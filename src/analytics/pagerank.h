#ifndef DCBENCH_ANALYTICS_PAGERANK_H_
#define DCBENCH_ANALYTICS_PAGERANK_H_

/**
 * @file
 * PageRank kernel (workload #10, Mahout): damped power iteration over a
 * CSR web graph. The edge loop is a sequential sweep of sources with a
 * Zipf-skewed scatter into destination ranks -- the irregular
 * graph-analytics access pattern that gives PageRank the highest L2 MPKI
 * among the paper's data-analysis workloads.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "datagen/graph.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Result of a PageRank run. */
struct PageRankResult
{
    std::uint32_t iterations = 0;
    double final_delta = 0.0;  ///< L1 rank change of the last iteration
};

/** Narrated damped power iteration. */
class PageRank
{
  public:
    /**
     * @param graph   The web graph (kept by reference; must outlive this).
     * @param damping Damping factor (0.85 as in the original paper [14]).
     */
    PageRank(trace::ExecCtx& ctx, mem::AddressSpace& space,
             const datagen::CsrGraph& graph, double damping);

    /** Iterate until the L1 delta drops below `epsilon` or `max_iters`. */
    PageRankResult run(std::uint32_t max_iters, double epsilon);

    /** Ranks after the last run (sums to ~1). */
    const std::vector<double>& ranks() const { return ranks_.host(); }

    // --- Block-wise iteration API (op-budget friendly) -----------------

    /** Reset the next-rank accumulators for a new iteration. */
    void begin_iteration();

    /** Scatter contributions of source nodes [lo, hi). */
    void process_nodes(std::uint32_t lo, std::uint32_t hi);

    /** Apply damping/dangling mass; returns the L1 rank delta. */
    double finish_iteration();

    std::uint32_t num_nodes() const { return graph_.num_nodes; }

  private:
    double dangling_ = 0.0;
    trace::ExecCtx& ctx_;
    const datagen::CsrGraph& graph_;
    double damping_;
    mem::Region csr_offsets_region_;
    mem::Region csr_targets_region_;
    SimVec<double> ranks_;
    SimVec<double> next_;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_PAGERANK_H_
