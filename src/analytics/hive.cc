#include "analytics/hive.h"

#include <bit>

#include "util/assert.h"
#include "util/rng.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kFilterSite = 0x480001;
constexpr std::uint64_t kProbeSite = 0x480002;
constexpr std::uint64_t kScanSite = 0x480003;
constexpr std::uint64_t kDateSite = 0x480004;

std::size_t
table_size_for(std::size_t n)
{
    return std::bit_ceil(n * 2 + 16);
}

}  // namespace

HiveEngine::HiveEngine(trace::ExecCtx& ctx, mem::AddressSpace& space,
                       std::vector<datagen::RankingRow> rankings,
                       std::vector<datagen::UserVisitRow> visits)
    : ctx_(ctx), rankings_(std::move(rankings)), visits_(std::move(visits)),
      rankings_region_(space.alloc(
          rankings_.size() * sizeof(datagen::RankingRow) + 16,
          "hive_rankings")),
      visits_region_(space.alloc(
          visits_.size() * sizeof(datagen::UserVisitRow) + 16,
          "hive_uservisits")),
      hash_a_(space, table_size_for(visits_.size()), HashSlot{},
              "hive_hash_agg"),
      hash_b_(space, table_size_for(rankings_.size()), HashSlot{},
              "hive_hash_join"),
      out_buffer_(space, 4096, 0ull, "hive_out")
{
}

std::size_t
HiveEngine::probe(SimVec<HashSlot>& table, std::uint32_t key)
{
    const std::size_t mask = table.size() - 1;
    std::size_t idx = util::mix64(key) & mask;
    while (true) {
        ctx_.alu(2);
        ctx_.load(table.addr(idx));
        const HashSlot& slot = table[idx];
        const bool done = slot.key == key || slot.key == kEmptyKey;
        ctx_.branch(kProbeSite, !done);
        if (done)
            return idx;
        idx = (idx + 1) & mask;
    }
}

void
HiveEngine::clear(SimVec<HashSlot>& table)
{
    for (std::size_t i = 0; i < table.size(); ++i) {
        table[i] = HashSlot{};
        if ((i & 7) == 0)
            ctx_.store(table.addr(i));  // cache-line granular memset
    }
}

std::uint64_t
HiveEngine::query_filter(std::uint32_t page_rank_threshold)
{
    std::uint64_t hits = 0;
    std::size_t out = 0;
    for (std::size_t i = 0; i < rankings_.size(); ++i) {
        ctx_.load(rankings_region_.base +
                  i * sizeof(datagen::RankingRow));
        ctx_.alu(14);  // SerDe: decode row, evaluate the predicate expr
        ++rows_scanned_;
        const bool pass = rankings_[i].page_rank > page_rank_threshold;
        ctx_.alu(1);
        ctx_.branch(kFilterSite, pass);
        if (pass) {
            ++hits;
            // Materialize (pageURL, pageRank) into the output buffer.
            out_buffer_[out % out_buffer_.size()] =
                (static_cast<std::uint64_t>(rankings_[i].page_url) << 32) |
                rankings_[i].page_rank;
            ctx_.store(out_buffer_.addr(out % out_buffer_.size()));
            ++out;
        }
        if ((i & 15) == 15)
            ctx_.branch(kScanSite, i + 1 < rankings_.size());
    }
    return hits;
}

std::vector<IpAggregate>
HiveEngine::query_group_revenue()
{
    clear(hash_a_);
    for (std::size_t i = 0; i < visits_.size(); ++i) {
        ctx_.load(visits_region_.base +
                  i * sizeof(datagen::UserVisitRow));
        ctx_.alu(22);  // SerDe + expression evaluation per row
        // Field-delimiter scan: one predictable branch per column.
        for (int f = 0; f < 4; ++f)
            ctx_.branch(kScanSite + 16 + f, true);
        ++rows_scanned_;
        const datagen::UserVisitRow& row = visits_[i];
        const std::size_t idx = probe(hash_a_, row.source_ip);
        HashSlot& slot = hash_a_[idx];
        slot.key = row.source_ip;
        slot.value += row.ad_revenue;
        ++slot.aux;
        ctx_.fpu(1);
        ctx_.store(hash_a_.addr(idx));
        if ((i & 15) == 15)
            ctx_.branch(kScanSite, i + 1 < visits_.size());
    }
    std::vector<IpAggregate> out;
    for (std::size_t i = 0; i < hash_a_.size(); ++i) {
        ctx_.load(hash_a_.addr(i));
        if (hash_a_[i].key != kEmptyKey)
            out.push_back({hash_a_[i].key, hash_a_[i].value, 0.0});
    }
    return out;
}

std::vector<IpAggregate>
HiveEngine::query_join(std::uint32_t date_lo, std::uint32_t date_hi,
                       IpAggregate* top)
{
    // Build side: rankings keyed by pageURL.
    clear(hash_b_);
    for (std::size_t i = 0; i < rankings_.size(); ++i) {
        ctx_.load(rankings_region_.base +
                  i * sizeof(datagen::RankingRow));
        ctx_.alu(14);  // SerDe
        ++rows_scanned_;
        const std::size_t idx = probe(hash_b_, rankings_[i].page_url);
        hash_b_[idx].key = rankings_[i].page_url;
        hash_b_[idx].aux = rankings_[i].page_rank;
        ctx_.store(hash_b_.addr(idx));
    }

    // Probe side: filtered uservisits, aggregating per source IP.
    clear(hash_a_);
    struct RankAcc
    {
        double rank_sum = 0.0;
        std::uint64_t rows = 0;
    };
    std::vector<RankAcc> rank_acc(hash_a_.size());
    for (std::size_t i = 0; i < visits_.size(); ++i) {
        ctx_.load(visits_region_.base +
                  i * sizeof(datagen::UserVisitRow));
        ctx_.alu(22);  // SerDe + expression evaluation per row
        for (int f = 0; f < 4; ++f)
            ctx_.branch(kScanSite + 16 + f, true);
        ++rows_scanned_;
        const datagen::UserVisitRow& row = visits_[i];
        const bool in_window = row.visit_date >= date_lo &&
                               row.visit_date <= date_hi;
        ctx_.alu(2);
        ctx_.branch(kDateSite, in_window);
        if (!in_window)
            continue;
        const std::size_t bidx = probe(hash_b_, row.dest_url);
        const bool matched = hash_b_[bidx].key == row.dest_url;
        ctx_.branch(kProbeSite, matched);
        if (!matched)
            continue;
        const std::size_t aidx = probe(hash_a_, row.source_ip);
        HashSlot& slot = hash_a_[aidx];
        slot.key = row.source_ip;
        slot.value += row.ad_revenue;
        ++slot.aux;
        rank_acc[aidx].rank_sum += hash_b_[bidx].aux;
        rank_acc[aidx].rows += 1;
        ctx_.fpu(2);
        ctx_.store(hash_a_.addr(aidx));
    }

    std::vector<IpAggregate> out;
    IpAggregate best;
    for (std::size_t i = 0; i < hash_a_.size(); ++i) {
        ctx_.load(hash_a_.addr(i));
        if (hash_a_[i].key == kEmptyKey)
            continue;
        IpAggregate agg;
        agg.source_ip = hash_a_[i].key;
        agg.revenue = hash_a_[i].value;
        agg.avg_page_rank = rank_acc[i].rows > 0
            ? rank_acc[i].rank_sum / static_cast<double>(rank_acc[i].rows)
            : 0.0;
        ctx_.fpu(2);
        const bool better = agg.revenue > best.revenue;
        ctx_.branch(kFilterSite, better);
        if (better)
            best = agg;
        out.push_back(agg);
    }
    if (top)
        *top = best;
    return out;
}

}  // namespace dcb::analytics
