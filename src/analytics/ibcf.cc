#include "analytics/ibcf.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kPairLoopSite = 0x49001;
constexpr std::uint64_t kUserLoopSite = 0x49002;
constexpr std::uint64_t kPredLoopSite = 0x49003;
}  // namespace

Ibcf::Ibcf(trace::ExecCtx& ctx, mem::AddressSpace& space,
           std::uint32_t num_users, std::uint32_t num_items)
    : ctx_(ctx), users_(num_users), items_(num_items),
      profiles_(num_users),
      profile_region_(space.alloc(
          static_cast<std::uint64_t>(num_users) * 64 + 8, "ibcf_profiles")),
      dot_(space, static_cast<std::size_t>(num_items) * num_items, 0.0f,
           "ibcf_dot"),
      norm_(space, num_items, 0.0f, "ibcf_norm"),
      sim_(space, static_cast<std::size_t>(num_items) * num_items, 0.0f,
           "ibcf_sim")
{
    DCB_EXPECTS(num_users >= 1 && num_items >= 2);
}

void
Ibcf::add_rating(const datagen::Rating& rating)
{
    DCB_EXPECTS(rating.user < users_ && rating.item < items_);
    auto& profile = profiles_[rating.user];
    ctx_.alu(8);  // parse the rating record
    // Replace an existing rating for the same item, else append.
    ctx_.load(profile_region_.base + rating.user * 64);
    bool replaced = false;
    for (std::size_t i = 0; i < profile.size(); ++i) {
        ctx_.load(profile_region_.base + rating.user * 64 + (i % 8) * 8);
        const bool same = profile[i].item == rating.item;
        ctx_.branch(kUserLoopSite, !same);
        if (same) {
            profile[i].score = rating.score;
            replaced = true;
            break;
        }
    }
    if (!replaced)
        profile.push_back({rating.item, rating.score});
    ctx_.store(profile_region_.base + rating.user * 64);
    score_sum_ += rating.score;
    ++ratings_;
}

void
Ibcf::build_similarity()
{
    // Pass 1: norms and pairwise dot products, user by user.
    for (std::uint32_t u = 0; u < users_; ++u) {
        const auto& profile = profiles_[u];
        for (std::size_t i = 0; i < profile.size(); ++i) {
            const Entry& a = profile[i];
            ctx_.load(profile_region_.base + u * 64 + (i % 8) * 8);
            ctx_.load(norm_.addr(a.item));
            norm_[a.item] += a.score * a.score;
            ctx_.fpu(2);
            ctx_.store(norm_.addr(a.item));
            for (std::size_t j = i + 1; j < profile.size(); ++j) {
                const Entry& b = profile[j];
                // Scattered accumulate into the item-item matrix.
                const std::size_t lo = cell(std::min(a.item, b.item),
                                            std::max(a.item, b.item));
                ctx_.alu(2);
                ctx_.load(dot_.addr(lo));
                dot_[lo] += a.score * b.score;
                ctx_.fpu(2);
                ctx_.store(dot_.addr(lo));
                ctx_.branch(kPairLoopSite, j + 1 < profile.size());
            }
        }
        ctx_.branch(kUserLoopSite, u + 1 < users_);
    }
    // Pass 2: normalize to cosine similarity (symmetric).
    for (std::uint32_t a = 0; a < items_; ++a) {
        ctx_.load(norm_.addr(a));
        for (std::uint32_t b = a + 1; b < items_; ++b) {
            const std::size_t ab = cell(a, b);
            ctx_.load(dot_.addr(ab));
            ctx_.load(norm_.addr(b));
            const double denom = std::sqrt(static_cast<double>(norm_[a])) *
                                 std::sqrt(static_cast<double>(norm_[b]));
            const float s = denom > 0.0
                ? static_cast<float>(dot_[ab] / denom)
                : 0.0f;
            sim_[ab] = s;
            sim_[cell(b, a)] = s;
            ctx_.fpu(4);
            ctx_.store(sim_.addr(ab));
            ctx_.store(sim_.addr(cell(b, a)));
        }
    }
    built_ = true;
}

double
Ibcf::similarity(std::uint32_t a, std::uint32_t b) const
{
    DCB_EXPECTS(built_);
    DCB_EXPECTS(a < items_ && b < items_);
    if (a == b)
        return 1.0;
    return sim_[cell(a, b)];
}

double
Ibcf::predict(std::uint32_t user, std::uint32_t item)
{
    DCB_EXPECTS(built_);
    DCB_EXPECTS(user < users_ && item < items_);
    const auto& profile = profiles_[user];
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < profile.size(); ++i) {
        const Entry& e = profile[i];
        if (e.item == item)
            continue;
        ctx_.load(profile_region_.base + user * 64 + (i % 8) * 8);
        ctx_.load(sim_.addr(cell(item, e.item)));
        const double s = sim_[cell(item, e.item)];
        num += s * e.score;
        den += std::fabs(s);
        ctx_.fpu(3, true);
        ctx_.branch(kPredLoopSite, i + 1 < profile.size());
    }
    if (den <= 1e-9)
        return ratings_ ? score_sum_ / static_cast<double>(ratings_) : 3.0;
    return num / den;
}

}  // namespace dcb::analytics
