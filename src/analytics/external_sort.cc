#include "analytics/external_sort.h"

#include <algorithm>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
// Stable branch-site ids for the sort's comparison/loop branches.
constexpr std::uint64_t kCmpSite = 0x5047001;
constexpr std::uint64_t kRunoutSite = 0x5047002;
constexpr std::uint64_t kLoopSite = 0x5047003;
}  // namespace

ExternalSort::ExternalSort(trace::ExecCtx& ctx, mem::AddressSpace& space,
                           std::size_t capacity, std::size_t run_records)
    : ctx_(ctx), run_records_(run_records),
      buf_a_(space, capacity, "sort_buf_a"),
      buf_b_(space, capacity, "sort_buf_b")
{
    DCB_EXPECTS(capacity >= 1 && run_records >= 1);
}

void
ExternalSort::merge_pass(SimVec<SortRecord>& src, SimVec<SortRecord>& dst,
                         std::size_t width, std::size_t n, SortResult& r)
{
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
        const std::size_t mid = std::min(lo + width, n);
        const std::size_t hi = std::min(lo + 2 * width, n);
        std::size_t i = lo;
        std::size_t j = mid;
        for (std::size_t k = lo; k < hi; ++k) {
            bool take_left;
            if (i >= mid || j >= hi) {
                // One side exhausted: a cheap bound check, no key loads.
                ctx_.branch(kRunoutSite, true);
                take_left = j >= hi;
            } else {
                ctx_.load(src.addr(i));
                ctx_.load(src.addr(j));
                take_left = src[i].key <= src[j].key;
                ++r.comparisons;
                // Optimized merge loops compile the data-dependent pick
                // to cmov; only the occasional run-detection check is a
                // real (and predictable) branch.
                ctx_.alu(2);
                if ((k & 7) == 7)
                    ctx_.branch(kCmpSite, take_left);
            }
            const std::size_t from = take_left ? i++ : j++;
            dst[k] = src[from];
            ctx_.alu(1);  // cursor bump
            ctx_.store(dst.addr(k));
            ++r.moves;
            ctx_.branch(kLoopSite, k + 1 < hi);
        }
    }
}

SortResult
ExternalSort::sort(const std::vector<SortRecord>& records)
{
    const std::size_t n = records.size();
    DCB_EXPECTS(n <= buf_a_.size());
    SortResult r;
    r.runs = n == 0 ? 0 : (n + run_records_ - 1) / run_records_;

    // Ingest: copy records into the simulated input buffer.
    for (std::size_t i = 0; i < n; ++i) {
        buf_a_[i] = records[i];
        ctx_.store(buf_a_.addr(i));
    }
    if (n <= 1) {
        out_ = &buf_a_;
        return r;
    }

    SimVec<SortRecord>* src = &buf_a_;
    SimVec<SortRecord>* dst = &buf_b_;
    for (std::size_t width = 1; width < n; width *= 2) {
        merge_pass(*src, *dst, width, n, r);
        std::swap(src, dst);
    }
    out_ = src;
    return r;
}

}  // namespace dcb::analytics
