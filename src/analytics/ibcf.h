#ifndef DCBENCH_ANALYTICS_IBCF_H_
#define DCBENCH_ANALYTICS_IBCF_H_

/**
 * @file
 * Item-Based Collaborative Filtering kernel (workload #8, Mahout):
 * estimates a user's preference for an item from their ratings of
 * similar items. The similarity build is the Mahout pairwise pass --
 * for every user, all pairs of co-rated items accumulate into an
 * item-item cosine matrix (scattered read-modify-writes across a matrix
 * that exceeds L2, the source of IBCF's large retired-instruction count
 * in Table I); prediction is a weighted sum over the user's profile.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "datagen/ratings.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Narrated item-based collaborative filtering. */
class Ibcf
{
  public:
    Ibcf(trace::ExecCtx& ctx, mem::AddressSpace& space,
         std::uint32_t num_users, std::uint32_t num_items);

    /** Ingest one rating (last rating wins for duplicate user/item). */
    void add_rating(const datagen::Rating& rating);

    /** Build the item-item cosine similarity matrix from ratings. */
    void build_similarity();

    /** Cosine similarity between two items; valid after build. */
    double similarity(std::uint32_t a, std::uint32_t b) const;

    /**
     * Predict user's rating of an item as a similarity-weighted mean of
     * the user's profile; returns the global mean if no evidence.
     */
    double predict(std::uint32_t user, std::uint32_t item);

    std::uint64_t ratings_ingested() const { return ratings_; }

  private:
    struct Entry
    {
        std::uint32_t item;
        float score;
    };

    std::size_t cell(std::uint32_t a, std::uint32_t b) const
    {
        return static_cast<std::size_t>(a) * items_ + b;
    }

    trace::ExecCtx& ctx_;
    std::uint32_t users_;
    std::uint32_t items_;
    std::vector<std::vector<Entry>> profiles_;  ///< per-user ratings
    mem::Region profile_region_;                ///< simulated profile store
    SimVec<float> dot_;     ///< item x item co-rating dot products
    SimVec<float> norm_;    ///< per-item sum of squares
    SimVec<float> sim_;     ///< finished similarity matrix
    std::uint64_t ratings_ = 0;
    double score_sum_ = 0.0;
    bool built_ = false;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_IBCF_H_
