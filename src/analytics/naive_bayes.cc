#include "analytics/naive_bayes.h"

#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kWordLoopSite = 0x4B001;
constexpr std::uint64_t kArgmaxSite = 0x4B002;
}  // namespace

NaiveBayes::NaiveBayes(trace::ExecCtx& ctx, mem::AddressSpace& space,
                       std::uint32_t vocab_size, std::uint32_t classes)
    : ctx_(ctx), vocab_(vocab_size), classes_(classes),
      word_counts_(space, static_cast<std::size_t>(vocab_size) * classes,
                   0u, "nb_word_counts"),
      class_totals_(space, classes, 0ull, "nb_class_totals"),
      class_docs_(space, classes, 0ull, "nb_class_docs"),
      log_likelihood_(space, static_cast<std::size_t>(vocab_size) * classes,
                      0.0f, "nb_log_likelihood"),
      log_prior_(space, classes, 0.0f, "nb_log_prior")
{
    DCB_EXPECTS(vocab_size >= 1 && classes >= 2);
}

void
NaiveBayes::train(const datagen::Document& doc)
{
    DCB_EXPECTS(doc.label >= 0 &&
                doc.label < static_cast<std::int32_t>(classes_));
    const auto cls = static_cast<std::uint32_t>(doc.label);
    for (std::size_t i = 0; i < doc.words.size(); ++i) {
        const std::uint32_t w = doc.words[i];
        const std::size_t c = cell(cls, w);
        ctx_.alu(2);  // offset arithmetic
        ctx_.load(word_counts_.addr(c));
        ++word_counts_[c];
        // Mahout's trainer keeps running TF-IDF style log weights: a
        // dependent FP chain alongside the count update.
        ctx_.fpu(2, true);
        ctx_.store(word_counts_.addr(c));
        ctx_.branch(kWordLoopSite, i + 1 < doc.words.size());
    }
    class_totals_[cls] += doc.words.size();
    ctx_.load(class_totals_.addr(cls));
    ctx_.alu(1);
    ctx_.store(class_totals_.addr(cls));
    ++class_docs_[cls];
    ctx_.store(class_docs_.addr(cls));
    ++trained_docs_;
}

void
NaiveBayes::finalize()
{
    DCB_EXPECTS(trained_docs_ > 0);
    for (std::uint32_t c = 0; c < classes_; ++c) {
        ctx_.load(class_docs_.addr(c));
        log_prior_[c] = std::log(
            (static_cast<double>(class_docs_[c]) + 1.0) /
            (static_cast<double>(trained_docs_) + classes_));
        ctx_.fpu(2);
        ctx_.store(log_prior_.addr(c));
        const double denom = static_cast<double>(class_totals_[c]) + vocab_;
        for (std::uint32_t w = 0; w < vocab_; ++w) {
            const std::size_t idx = cell(c, w);
            ctx_.load(word_counts_.addr(idx));
            log_likelihood_[idx] = static_cast<float>(std::log(
                (static_cast<double>(word_counts_[idx]) + 1.0) / denom));
            ctx_.fpu(2);
            ctx_.store(log_likelihood_.addr(idx));
        }
    }
    finalized_ = true;
}

std::uint32_t
NaiveBayes::classify(const datagen::Document& doc)
{
    DCB_EXPECTS(finalized_);
    std::uint32_t best = 0;
    double best_score = -1e300;
    for (std::uint32_t c = 0; c < classes_; ++c) {
        ctx_.load(log_prior_.addr(c));
        double score = log_prior_[c];
        for (std::size_t i = 0; i < doc.words.size(); ++i) {
            const std::size_t idx = cell(c, doc.words[i]);
            ctx_.alu(1);
            ctx_.load(log_likelihood_.addr(idx));
            score += log_likelihood_[idx];
            // The running log-probability is one long dependence chain
            // across words: this op consumes the previous word's
            // accumulate (6 ops back), and the compensation term chains
            // on it (Kahan-style summation in the Mahout classifier).
            ctx_.fpu(1, false, 4);
            ctx_.fpu(1, true);
            ctx_.branch(kWordLoopSite, i + 1 < doc.words.size());
        }
        const bool better = score > best_score;
        // maxsd + cmov argmax; the class loop itself is the branch.
        ctx_.fpu(1);
        ctx_.alu(1);
        ctx_.branch(kArgmaxSite, c + 1 < classes_);
        if (better) {
            best_score = score;
            best = c;
        }
    }
    return best;
}

}  // namespace dcb::analytics
