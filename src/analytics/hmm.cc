#include "analytics/hmm.h"

#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kStateLoopSite = 0x484D01;
constexpr std::uint64_t kMaxSite = 0x484D02;
constexpr std::uint64_t kCharLoopSite = 0x484D03;
}  // namespace

SegmentationSource::SegmentationSource(std::uint16_t alphabet,
                                       std::uint64_t seed)
    : alphabet_(alphabet), rng_(seed)
{
    DCB_EXPECTS(alphabet >= 8);
}

TaggedSequence
SegmentationSource::next_sequence(std::uint32_t mean_len)
{
    TaggedSequence seq;
    const std::uint64_t target = 4 + rng_.next_geometric(mean_len, mean_len
                                                         * 8);
    while (seq.chars.size() < target) {
        // Word length: 1..6, short words most common.
        const std::uint64_t len = 1 + rng_.next_geometric(0.9, 5);
        for (std::uint64_t i = 0; i < len; ++i) {
            SegState s;
            if (len == 1)
                s = SegState::kS;
            else if (i == 0)
                s = SegState::kB;
            else if (i + 1 == len)
                s = SegState::kE;
            else
                s = SegState::kM;
            // Emission: biased toward a per-state character band.
            std::uint16_t ch;
            if (rng_.next_bool(0.6)) {
                const auto band = static_cast<std::uint16_t>(s);
                ch = static_cast<std::uint16_t>(
                    (rng_.next_below(alphabet_ / 4) * 4 + band) % alphabet_);
            } else {
                ch = static_cast<std::uint16_t>(rng_.next_below(alphabet_));
            }
            seq.chars.push_back(ch);
            seq.states.push_back(static_cast<std::uint8_t>(s));
        }
    }
    return seq;
}

HmmSegmenter::HmmSegmenter(trace::ExecCtx& ctx, mem::AddressSpace& space,
                           std::uint16_t alphabet,
                           std::uint32_t max_seq_len)
    : ctx_(ctx), alphabet_(alphabet),
      trans_counts_(space, kNumSegStates * kNumSegStates, 0ull,
                    "hmm_trans_counts"),
      emit_counts_(space,
                   static_cast<std::size_t>(kNumSegStates) * alphabet,
                   0ull, "hmm_emit_counts"),
      init_counts_(space, kNumSegStates, 0ull, "hmm_init_counts"),
      log_trans_(space, kNumSegStates * kNumSegStates, 0.0f, "hmm_log_trans"),
      log_emit_(space, static_cast<std::size_t>(kNumSegStates) * alphabet,
                0.0f, "hmm_log_emit"),
      log_init_(space, kNumSegStates, 0.0f, "hmm_log_init"),
      max_seq_len_(max_seq_len),
      score_(space, 2 * kNumSegStates, 0.0f, "hmm_score"),
      back_(space, static_cast<std::size_t>(max_seq_len) * kNumSegStates,
            std::uint8_t{0}, "hmm_back")
{
    DCB_EXPECTS(alphabet >= 8 && max_seq_len >= 1);
}

void
HmmSegmenter::train(const TaggedSequence& seq)
{
    DCB_EXPECTS(seq.chars.size() == seq.states.size());
    if (seq.chars.empty())
        return;
    ++init_counts_[seq.states[0]];
    ctx_.store(init_counts_.addr(seq.states[0]));
    for (std::size_t i = 0; i < seq.chars.size(); ++i) {
        const std::uint8_t s = seq.states[i];
        const std::size_t e = emit_cell(s, seq.chars[i]);
        ctx_.alu(2);
        ctx_.load(emit_counts_.addr(e));
        ++emit_counts_[e];
        ctx_.store(emit_counts_.addr(e));
        if (i + 1 < seq.chars.size()) {
            const std::size_t t = s * kNumSegStates + seq.states[i + 1];
            ctx_.load(trans_counts_.addr(t));
            ++trans_counts_[t];
            ctx_.alu(1);
            ctx_.store(trans_counts_.addr(t));
        }
        ctx_.branch(kCharLoopSite, i + 1 < seq.chars.size());
    }
    trained_chars_ += seq.chars.size();
}

void
HmmSegmenter::finalize()
{
    DCB_EXPECTS(trained_chars_ > 0);
    double init_total = 0.0;
    for (std::uint32_t s = 0; s < kNumSegStates; ++s)
        init_total += static_cast<double>(init_counts_[s]);
    for (std::uint32_t s = 0; s < kNumSegStates; ++s) {
        ctx_.load(init_counts_.addr(s));
        log_init_[s] = static_cast<float>(std::log(
            (static_cast<double>(init_counts_[s]) + 1.0) /
            (init_total + kNumSegStates)));
        ctx_.fpu(2);
        ctx_.store(log_init_.addr(s));

        double row_total = 0.0;
        for (std::uint32_t t = 0; t < kNumSegStates; ++t)
            row_total += static_cast<double>(
                trans_counts_[s * kNumSegStates + t]);
        for (std::uint32_t t = 0; t < kNumSegStates; ++t) {
            const std::size_t idx = s * kNumSegStates + t;
            ctx_.load(trans_counts_.addr(idx));
            log_trans_[idx] = static_cast<float>(std::log(
                (static_cast<double>(trans_counts_[idx]) + 1.0) /
                (row_total + kNumSegStates)));
            ctx_.fpu(2);
            ctx_.store(log_trans_.addr(idx));
        }

        double emit_total = 0.0;
        for (std::uint32_t ch = 0; ch < alphabet_; ++ch)
            emit_total += static_cast<double>(emit_counts_[emit_cell(s,
                static_cast<std::uint16_t>(ch))]);
        for (std::uint32_t ch = 0; ch < alphabet_; ++ch) {
            const std::size_t idx = emit_cell(
                s, static_cast<std::uint16_t>(ch));
            ctx_.load(emit_counts_.addr(idx));
            log_emit_[idx] = static_cast<float>(std::log(
                (static_cast<double>(emit_counts_[idx]) + 1.0) /
                (emit_total + alphabet_)));
            ctx_.fpu(2);
            ctx_.store(log_emit_.addr(idx));
        }
    }
    finalized_ = true;
}

void
HmmSegmenter::decode(const std::vector<std::uint16_t>& chars,
                     std::vector<std::uint8_t>& out)
{
    DCB_EXPECTS(finalized_);
    DCB_EXPECTS(chars.size() <= max_seq_len_);
    out.assign(chars.size(), 0);
    if (chars.empty())
        return;

    // Initial column.
    for (std::uint32_t s = 0; s < kNumSegStates; ++s) {
        ctx_.load(log_init_.addr(s));
        ctx_.load(log_emit_.addr(emit_cell(s, chars[0])));
        score_[s] = log_init_[s] + log_emit_[emit_cell(s, chars[0])];
        ctx_.fpu(1);
        ctx_.store(score_.addr(s));
    }

    std::uint32_t cur = 0;  // double-buffered lattice column
    for (std::size_t i = 1; i < chars.size(); ++i) {
        const std::uint32_t nxt = cur ^ 1;
        for (std::uint32_t t = 0; t < kNumSegStates; ++t) {
            float best = -1e30f;
            std::uint8_t best_s = 0;
            for (std::uint32_t s = 0; s < kNumSegStates; ++s) {
                ctx_.load(score_.addr(cur * kNumSegStates + s));
                ctx_.load(log_trans_.addr(s * kNumSegStates + t));
                const float cand = score_[cur * kNumSegStates + s] +
                                   log_trans_[s * kNumSegStates + t];
                // maxss + cmov: branchless but serially dependent on the
                // running maximum (flag chain).
                ctx_.fpu(1);
                ctx_.fpu(1, true);
                ctx_.alu(1, true);
                const bool better = cand > best;
                if (better) {
                    best = cand;
                    best_s = static_cast<std::uint8_t>(s);
                }
            }
            ctx_.load(log_emit_.addr(emit_cell(t, chars[i])));
            score_[nxt * kNumSegStates + t] =
                best + log_emit_[emit_cell(t, chars[i])];
            ctx_.fpu(1);
            ctx_.store(score_.addr(nxt * kNumSegStates + t));
            back_[i * kNumSegStates + t] = best_s;
            ctx_.store(back_.addr(i * kNumSegStates + t));
            ctx_.branch(kStateLoopSite, t + 1 < kNumSegStates);
        }
        cur = nxt;
        ctx_.branch(kCharLoopSite, i + 1 < chars.size());
    }

    // Terminal argmax + backtrack (pointer chase through the lattice).
    std::uint8_t state = 0;
    float best = -1e30f;
    for (std::uint32_t s = 0; s < kNumSegStates; ++s) {
        ctx_.load(score_.addr(cur * kNumSegStates + s));
        if (score_[cur * kNumSegStates + s] > best) {
            best = score_[cur * kNumSegStates + s];
            state = static_cast<std::uint8_t>(s);
        }
        ctx_.fpu(1);
        ctx_.alu(1);
        ctx_.branch(kMaxSite, s + 1 < kNumSegStates);
    }
    out[chars.size() - 1] = state;
    for (std::size_t i = chars.size() - 1; i > 0; --i) {
        ctx_.chase_load(back_.addr(i * kNumSegStates + state));
        state = back_[i * kNumSegStates + state];
        out[i - 1] = state;
        ctx_.branch(kCharLoopSite, i > 1);
    }
}

}  // namespace dcb::analytics
