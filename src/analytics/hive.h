#ifndef DCBENCH_ANALYTICS_HIVE_H_
#define DCBENCH_ANALYTICS_HIVE_H_

/**
 * @file
 * Hive-bench kernel (workload #11): the representative SQL-like statements
 * of the Hive-bench suite the paper includes (HIVE-396, derived from the
 * Pavlo et al. benchmark), executed by a narrated mini relational engine:
 *
 *   Q1 (scan/filter):  SELECT pageURL, pageRank FROM rankings
 *                      WHERE pageRank > X
 *   Q2 (aggregation):  SELECT sourceIP, SUM(adRevenue) FROM uservisits
 *                      GROUP BY sourceIP
 *   Q3 (join):         SELECT sourceIP, AVG(pageRank), SUM(adRevenue)
 *                      FROM rankings JOIN uservisits
 *                      ON pageURL = destURL
 *                      WHERE visitDate IN [lo, hi] GROUP BY sourceIP
 *
 * Operators are the classic physical ones -- full scan with predicate,
 * open-addressing hash aggregate, build+probe hash join -- and every
 * probe, compare and spill-side store is narrated.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "datagen/tables.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Q2/Q3 output row. */
struct IpAggregate
{
    std::uint32_t source_ip = 0;
    double revenue = 0.0;
    double avg_page_rank = 0.0;  ///< Q3 only
};

/** Narrated mini SQL engine over the two Hive-bench tables. */
class HiveEngine
{
  public:
    HiveEngine(trace::ExecCtx& ctx, mem::AddressSpace& space,
               std::vector<datagen::RankingRow> rankings,
               std::vector<datagen::UserVisitRow> visits);

    /** Q1: number of rankings with page_rank > threshold (and materialize). */
    std::uint64_t query_filter(std::uint32_t page_rank_threshold);

    /** Q2: revenue per source IP. */
    std::vector<IpAggregate> query_group_revenue();

    /**
     * Q3: per-IP revenue and average joined pageRank over a date window;
     * also returns (via `top`) the IP with the highest revenue.
     */
    std::vector<IpAggregate> query_join(std::uint32_t date_lo,
                                        std::uint32_t date_hi,
                                        IpAggregate* top);

    std::uint64_t rows_scanned() const { return rows_scanned_; }

  private:
    /** Open-addressing slot for the aggregate/join hash tables. */
    struct HashSlot
    {
        std::uint32_t key = kEmptyKey;
        std::uint32_t aux = 0;     ///< join: pageRank; agg: row count
        double value = 0.0;        ///< aggregate payload
    };
    static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFF;

    std::size_t probe(SimVec<HashSlot>& table, std::uint32_t key);
    void clear(SimVec<HashSlot>& table);

    trace::ExecCtx& ctx_;
    std::vector<datagen::RankingRow> rankings_;
    std::vector<datagen::UserVisitRow> visits_;
    mem::Region rankings_region_;
    mem::Region visits_region_;
    SimVec<HashSlot> hash_a_;  ///< aggregate table
    SimVec<HashSlot> hash_b_;  ///< join build table
    SimVec<std::uint64_t> out_buffer_;
    std::uint64_t rows_scanned_ = 0;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_HIVE_H_
