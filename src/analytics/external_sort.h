#ifndef DCBENCH_ANALYTICS_EXTERNAL_SORT_H_
#define DCBENCH_ANALYTICS_EXTERNAL_SORT_H_

/**
 * @file
 * Sort kernel (workload #1, "Hadoop example").
 *
 * Mirrors the structure of Hadoop's Sort: records are sorted in
 * memory-sized runs (narrated bottom-up merge sort -- comparisons and
 * moves only, the paper's "simple computing logic, only comparing"), and
 * runs are then combined by a narrated k-way merge. I/O (run spills and
 * re-reads) is charged by the caller through the OS model, which is what
 * gives Sort its distinctive ~24% kernel-instruction share and top disk
 * write rate (Figures 4 and 5).
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** A sortable record: 8-byte key, 8-byte payload handle. */
struct SortRecord
{
    std::uint64_t key = 0;
    std::uint64_t payload = 0;
};

/** Result of a sort run. */
struct SortResult
{
    std::uint64_t comparisons = 0;
    std::uint64_t moves = 0;
    std::uint64_t runs = 0;
};

/** Narrated external merge sort over simulated memory. */
class ExternalSort
{
  public:
    /**
     * @param ctx        Execution context to narrate into.
     * @param space      Address space for the record buffers.
     * @param run_records In-memory run size (records per spill).
     */
    ExternalSort(trace::ExecCtx& ctx, mem::AddressSpace& space,
                 std::size_t capacity, std::size_t run_records);

    /**
     * Sort `records` (copied in). After return, sorted() holds the
     * keys in nondecreasing order.
     */
    SortResult sort(const std::vector<SortRecord>& records);

    const std::vector<SortRecord>& sorted() const { return out_->host(); }

  private:
    void merge_pass(SimVec<SortRecord>& src, SimVec<SortRecord>& dst,
                    std::size_t width, std::size_t n, SortResult& r);

    trace::ExecCtx& ctx_;
    std::size_t run_records_;
    SimVec<SortRecord> buf_a_;
    SimVec<SortRecord> buf_b_;
    SimVec<SortRecord>* out_ = nullptr;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_EXTERNAL_SORT_H_
