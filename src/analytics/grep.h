#ifndef DCBENCH_ANALYTICS_GREP_H_
#define DCBENCH_ANALYTICS_GREP_H_

/**
 * @file
 * Grep kernel (workload #3, "Hadoop example"): extracts lines matching a
 * pattern and counts occurrences. The matcher is Boyer-Moore-Horspool
 * over the raw bytes -- streaming loads with a data-dependent skip loop,
 * which is exactly the access/branch profile that makes Grep one of the
 * lighter data-analysis workloads in the paper (high IPC, few misses).
 */

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/simdata.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Narrated Boyer-Moore-Horspool substring scanner. */
class Grep
{
  public:
    /**
     * @param pattern Non-empty byte pattern to search for.
     * @param buffer_bytes Simulated input buffer size (lines are staged
     *        through it, as Hadoop streams splits through record readers).
     */
    Grep(trace::ExecCtx& ctx, mem::AddressSpace& space, std::string pattern,
         std::size_t buffer_bytes);

    /**
     * Scan one line.
     * @return Number of (possibly overlapping at distance >= |pattern|)
     *         matches in the line.
     */
    std::uint64_t scan_line(std::string_view line);

    std::uint64_t matches() const { return matches_; }
    std::uint64_t bytes_scanned() const { return bytes_scanned_; }
    std::uint64_t matching_lines() const { return matching_lines_; }

  private:
    trace::ExecCtx& ctx_;
    std::string pattern_;
    std::array<std::uint8_t, 256> skip_{};
    SimVec<char> buffer_;
    std::size_t cursor_ = 0;
    std::uint64_t matches_ = 0;
    std::uint64_t bytes_scanned_ = 0;
    std::uint64_t matching_lines_ = 0;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_GREP_H_
