#include "analytics/fuzzy_kmeans.h"

#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kDimLoopSite = 0x464B01;
constexpr std::uint64_t kCenterLoopSite = 0x464B02;
constexpr std::uint64_t kPointLoopSite = 0x464B03;
}  // namespace

FuzzyKmeans::FuzzyKmeans(trace::ExecCtx& ctx, mem::AddressSpace& space,
                         const std::vector<double>& points, std::size_t n,
                         std::uint32_t dims, std::uint32_t k,
                         double fuzziness)
    : ctx_(ctx), n_(n), dims_(dims), k_(k), m_(fuzziness),
      points_(space, n * dims, "fkm_points"),
      centers_(space, static_cast<std::size_t>(k) * dims, "fkm_centers"),
      num_(space, static_cast<std::size_t>(k) * dims, 0.0, "fkm_num"),
      den_(space, k, 0.0, "fkm_den"),
      dist_(space, k, 0.0, "fkm_dist"),
      memberships_(space, n * k, 0.0, "fkm_memberships")
{
    DCB_EXPECTS(points.size() == n * dims);
    DCB_EXPECTS(k >= 1 && n >= k);
    DCB_EXPECTS(fuzziness > 1.0);
    points_.host() = points;
    for (std::uint32_t c = 0; c < k_; ++c)
        for (std::uint32_t d = 0; d < dims_; ++d)
            centers_[static_cast<std::size_t>(c) * dims_ + d] =
                points_[static_cast<std::size_t>(c) * dims_ + d];
}

void
FuzzyKmeans::begin_pass()
{
    for (std::size_t i = 0; i < num_.size(); ++i) {
        num_[i] = 0.0;
        ctx_.store(num_.addr(i));
    }
    for (std::uint32_t c = 0; c < k_; ++c) {
        den_[c] = 0.0;
        ctx_.store(den_.addr(c));
    }
}

double
FuzzyKmeans::process_block(std::size_t start, std::size_t count)
{
    // Membership exponent on *squared* distances: (d2_c/d2_j)^(1/(m-1)).
    const double exponent = 1.0 / (m_ - 1.0);
    const std::size_t end = std::min(start + count, n_);
    double objective = 0.0;
    for (std::size_t p = start; p < end; ++p) {
        const std::size_t prow = p * dims_;
        // Squared distances to every center.
        for (std::uint32_t c = 0; c < k_; ++c) {
            const std::size_t crow = static_cast<std::size_t>(c) * dims_;
            double d2 = 0.0;
            for (std::uint32_t d = 0; d < dims_; ++d) {
                ctx_.load(points_.addr(prow + d));
                ctx_.load(centers_.addr(crow + d));
                const double diff = points_[prow + d] - centers_[crow + d];
                d2 += diff * diff;
                ctx_.fpu(2);
                if ((d & 3) == 3)
                    ctx_.branch(kDimLoopSite, d + 1 < dims_);
            }
            dist_[c] = d2 > 1e-12 ? d2 : 1e-12;
            ctx_.store(dist_.addr(c));
            ctx_.branch(kCenterLoopSite, c + 1 < k_);
        }
        // Memberships: u_c = 1 / sum_j (d_c/d_j)^(1/(m-1)) on squared d.
        for (std::uint32_t c = 0; c < k_; ++c) {
            double denom = 0.0;
            ctx_.load(dist_.addr(c));
            for (std::uint32_t j = 0; j < k_; ++j) {
                ctx_.load(dist_.addr(j));
                denom += std::pow(dist_[c] / dist_[j], exponent);
                // pow() is a short dependent chain feeding a running sum.
                ctx_.fpu(3, true);
                ctx_.fpu(3);
                ctx_.branch(kCenterLoopSite, j + 1 < k_);
            }
            const double u = 1.0 / denom;
            ctx_.fpu(1);
            memberships_[p * k_ + c] = u;
            ctx_.store(memberships_.addr(p * k_ + c));
            const double um = std::pow(u, m_);
            ctx_.fpu(4, true);
            objective += um * dist_[c];
            ctx_.fpu(2, true);
            // Weighted accumulation into center numerators.
            const std::size_t crow = static_cast<std::size_t>(c) * dims_;
            for (std::uint32_t d = 0; d < dims_; ++d) {
                ctx_.load(num_.addr(crow + d));
                num_[crow + d] += um * points_[prow + d];
                ctx_.fpu(2);
                ctx_.store(num_.addr(crow + d));
            }
            ctx_.load(den_.addr(c));
            den_[c] += um;
            ctx_.fpu(1);
            ctx_.store(den_.addr(c));
        }
        ctx_.branch(kPointLoopSite, p + 1 < end);
    }
    return objective;
}

double
FuzzyKmeans::finish_pass()
{
    // Center update.
    double shift = 0.0;
    for (std::uint32_t c = 0; c < k_; ++c) {
        ctx_.load(den_.addr(c));
        if (den_[c] <= 0.0)
            continue;
        const std::size_t crow = static_cast<std::size_t>(c) * dims_;
        for (std::uint32_t d = 0; d < dims_; ++d) {
            ctx_.load(num_.addr(crow + d));
            const double updated = num_[crow + d] / den_[c];
            const double diff = updated - centers_[crow + d];
            shift += diff * diff;
            centers_[crow + d] = updated;
            ctx_.fpu(3);
            ctx_.store(centers_.addr(crow + d));
        }
    }
    return std::sqrt(shift);
}

double
FuzzyKmeans::iterate(double* objective_out)
{
    begin_pass();
    const double objective = process_block(0, n_);
    if (objective_out)
        *objective_out = objective;
    return finish_pass();
}

FuzzyKmeansResult
FuzzyKmeans::run(std::uint32_t max_iters, double epsilon)
{
    FuzzyKmeansResult result;
    for (std::uint32_t it = 0; it < max_iters; ++it) {
        double objective = 0.0;
        const double shift = iterate(&objective);
        ++result.iterations;
        result.objective = objective;
        result.objective_history.push_back(objective);
        if (shift < epsilon)
            break;
    }
    return result;
}

}  // namespace dcb::analytics
