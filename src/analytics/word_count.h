#ifndef DCBENCH_ANALYTICS_WORD_COUNT_H_
#define DCBENCH_ANALYTICS_WORD_COUNT_H_

/**
 * @file
 * WordCount kernel (workload #2, "Hadoop example"): counts occurrences of
 * each word with an open-addressing hash table, the same aggregation
 * structure Hadoop's combiner uses. Probes, key compares and count
 * updates are narrated; Zipf-skewed input makes hot counters cache-
 * resident while the long tail stresses the L2/L3, the locality pattern
 * behind the data-analysis workloads' mid-range L2 MPKI (Figure 9).
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Narrated open-addressing word -> count table. */
class WordCounter
{
  public:
    /**
     * @param buckets Power-of-two table size; must exceed distinct words.
     */
    WordCounter(trace::ExecCtx& ctx, mem::AddressSpace& space,
                std::size_t buckets);

    /** Count one word occurrence. */
    void add(std::uint32_t word);

    /** Count every word of a document. */
    void add_document(const std::vector<std::uint32_t>& words);

    /** Occurrences of `word` so far (0 if never seen). */
    std::uint64_t count_of(std::uint32_t word) const;

    std::uint64_t total_words() const { return total_; }
    std::uint64_t distinct_words() const { return distinct_; }
    std::uint64_t probe_steps() const { return probes_; }

  private:
    struct Slot
    {
        std::uint32_t word = kEmpty;
        std::uint32_t count = 0;
    };
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFF;

    std::size_t find_slot(std::uint32_t word, bool narrate) const;

    trace::ExecCtx& ctx_;
    mutable SimVec<Slot> table_;
    std::size_t mask_;
    std::uint64_t total_ = 0;
    std::uint64_t distinct_ = 0;
    mutable std::uint64_t probes_ = 0;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_WORD_COUNT_H_
