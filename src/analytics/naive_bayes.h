#ifndef DCBENCH_ANALYTICS_NAIVE_BAYES_H_
#define DCBENCH_ANALYTICS_NAIVE_BAYES_H_

/**
 * @file
 * Naive Bayes kernel (workload #4, Mahout): multinomial Naive Bayes text
 * classification with Laplace smoothing. Training accumulates per-class
 * word counts (dense count matrix, narrated); classification sums log
 * likelihoods over document words. This is the one data-analysis
 * workload CloudSuite also ships, and the paper shows it is *not*
 * representative of the class (lowest IPC among the eleven, smallest
 * front-end footprint), so its behaviour here matters for F3/F7.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "datagen/text.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Narrated multinomial Naive Bayes classifier. */
class NaiveBayes
{
  public:
    NaiveBayes(trace::ExecCtx& ctx, mem::AddressSpace& space,
               std::uint32_t vocab_size, std::uint32_t classes);

    /** Accumulate one labelled training document. */
    void train(const datagen::Document& doc);

    /** Finalize log-probability tables from the accumulated counts. */
    void finalize();

    /** Classify a document; valid after finalize(). */
    std::uint32_t classify(const datagen::Document& doc);

    std::uint64_t trained_documents() const { return trained_docs_; }
    std::uint32_t num_classes() const { return classes_; }

  private:
    std::size_t cell(std::uint32_t cls, std::uint32_t word) const
    {
        return static_cast<std::size_t>(cls) * vocab_ + word;
    }

    trace::ExecCtx& ctx_;
    std::uint32_t vocab_;
    std::uint32_t classes_;
    SimVec<std::uint32_t> word_counts_;   ///< classes x vocab
    SimVec<std::uint64_t> class_totals_;  ///< words per class
    SimVec<std::uint64_t> class_docs_;    ///< documents per class
    SimVec<float> log_likelihood_;        ///< classes x vocab
    SimVec<float> log_prior_;             ///< per class
    std::uint64_t trained_docs_ = 0;
    bool finalized_ = false;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_NAIVE_BAYES_H_
