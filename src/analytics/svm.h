#ifndef DCBENCH_ANALYTICS_SVM_H_
#define DCBENCH_ANALYTICS_SVM_H_

/**
 * @file
 * SVM kernel (workload #5, "our implementation" in the paper): a linear
 * support vector machine trained with the Pegasos stochastic sub-gradient
 * method over sparse bag-of-words features. Each step is a sparse dot
 * product (gather loads indexed by word id), a hinge-loss test
 * (data-dependent branch) and a scaled weight update -- the classic
 * sparse-ML access pattern.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "datagen/text.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Narrated Pegasos linear SVM (binary: label = class parity). */
class LinearSvm
{
  public:
    /**
     * @param lambda Regularization strength.
     */
    LinearSvm(trace::ExecCtx& ctx, mem::AddressSpace& space,
              std::uint32_t vocab_size, double lambda);

    /** One Pegasos step on a labelled document. */
    void train_step(const datagen::Document& doc);

    /** Decision value w . x for a document. */
    double decision(const datagen::Document& doc);

    /** Predicted binary label (+1 / -1 encoded as bool). */
    bool predict(const datagen::Document& doc);

    /** True binary label used for training: odd class ids are positive. */
    static bool positive_label(const datagen::Document& doc)
    {
        return doc.label % 2 == 1;
    }

    std::uint64_t steps() const { return steps_; }

  private:
    trace::ExecCtx& ctx_;
    double lambda_;
    SimVec<double> weights_;
    double scale_ = 1.0;  ///< lazy global scaling of w
    std::uint64_t steps_ = 0;
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_SVM_H_
