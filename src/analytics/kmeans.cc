#include "analytics/kmeans.h"

#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kDimLoopSite = 0x4D001;
constexpr std::uint64_t kArgminSite = 0x4D002;
constexpr std::uint64_t kPointLoopSite = 0x4D003;
}  // namespace

Kmeans::Kmeans(trace::ExecCtx& ctx, mem::AddressSpace& space,
               const std::vector<double>& points, std::size_t n,
               std::uint32_t dims, std::uint32_t k)
    : ctx_(ctx), n_(n), dims_(dims), k_(k),
      points_(space, n * dims, "kmeans_points"),
      centers_(space, static_cast<std::size_t>(k) * dims, "kmeans_centers"),
      new_centers_(space, static_cast<std::size_t>(k) * dims, 0.0,
                   "kmeans_new_centers"),
      counts_(space, k, 0ull, "kmeans_counts"),
      assign_(space, n, 0u, "kmeans_assign")
{
    DCB_EXPECTS(points.size() == n * dims);
    DCB_EXPECTS(k >= 1 && n >= k);
    points_.host() = points;
    // Initialize centers from the first k points (deterministic seeding).
    for (std::uint32_t c = 0; c < k_; ++c)
        for (std::uint32_t d = 0; d < dims_; ++d)
            centers_[static_cast<std::size_t>(c) * dims_ + d] =
                points_[static_cast<std::size_t>(c) * dims_ + d];
}

void
Kmeans::begin_pass()
{
    for (std::size_t i = 0; i < new_centers_.size(); ++i) {
        new_centers_[i] = 0.0;
        ctx_.store(new_centers_.addr(i));
    }
    for (std::uint32_t c = 0; c < k_; ++c) {
        counts_[c] = 0;
        ctx_.store(counts_.addr(c));
    }
}

double
Kmeans::assign_block(std::size_t start, std::size_t count)
{
    const std::size_t end = std::min(start + count, n_);
    double inertia = 0.0;
    for (std::size_t p = start; p < end; ++p) {
        const std::size_t prow = p * dims_;
        double best = 1e300;
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < k_; ++c) {
            const std::size_t crow = static_cast<std::size_t>(c) * dims_;
            double dist = 0.0;
            for (std::uint32_t d = 0; d < dims_; ++d) {
                ctx_.load(points_.addr(prow + d));
                ctx_.load(centers_.addr(crow + d));
                const double diff = points_[prow + d] - centers_[crow + d];
                dist += diff * diff;
                // sub + FMA into a single running sum: serial FP chain.
                ctx_.fpu(1);
                ctx_.fpu(1, true);
                if ((d & 3) == 3)
                    ctx_.branch(kDimLoopSite, d + 1 < dims_);
            }
            const bool better = dist < best;
            // min/argmin compiles to minsd + cmov: no control hazard.
            ctx_.fpu(1);
            ctx_.alu(1);
            ctx_.branch(kArgminSite, c + 1 < k_);  // center loop
            if (better) {
                best = dist;
                best_c = c;
            }
        }
        inertia += best;
        assign_[p] = best_c;
        ctx_.store(assign_.addr(p));
        // Accumulate into the new center.
        const std::size_t crow = static_cast<std::size_t>(best_c) * dims_;
        for (std::uint32_t d = 0; d < dims_; ++d) {
            ctx_.load(new_centers_.addr(crow + d));
            new_centers_[crow + d] += points_[prow + d];
            ctx_.fpu(1);
            ctx_.store(new_centers_.addr(crow + d));
        }
        ++counts_[best_c];
        ctx_.load(counts_.addr(best_c));
        ctx_.alu(1);
        ctx_.store(counts_.addr(best_c));
        ctx_.branch(kPointLoopSite, p + 1 < end);
    }
    return inertia;
}

double
Kmeans::finish_pass()
{
    // Recompute centers; track total center movement.
    double shift = 0.0;
    for (std::uint32_t c = 0; c < k_; ++c) {
        ctx_.load(counts_.addr(c));
        if (counts_[c] == 0)
            continue;  // keep the old center for empty clusters
        const std::size_t crow = static_cast<std::size_t>(c) * dims_;
        for (std::uint32_t d = 0; d < dims_; ++d) {
            ctx_.load(new_centers_.addr(crow + d));
            const double updated = new_centers_[crow + d] /
                                   static_cast<double>(counts_[c]);
            const double diff = updated - centers_[crow + d];
            shift += diff * diff;
            centers_[crow + d] = updated;
            ctx_.fpu(3);
            ctx_.store(centers_.addr(crow + d));
        }
    }
    return std::sqrt(shift);
}

double
Kmeans::assign_points(double* inertia_out)
{
    begin_pass();
    const double inertia = assign_block(0, n_);
    if (inertia_out)
        *inertia_out = inertia;
    return finish_pass();
}

KmeansResult
Kmeans::run(std::uint32_t max_iters, double epsilon)
{
    KmeansResult result;
    for (std::uint32_t it = 0; it < max_iters; ++it) {
        double inertia = 0.0;
        const double shift = assign_points(&inertia);
        ++result.iterations;
        result.inertia = inertia;
        result.inertia_history.push_back(inertia);
        if (shift < epsilon)
            break;
    }
    return result;
}

}  // namespace dcb::analytics
