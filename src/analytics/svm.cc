#include "analytics/svm.h"

#include <cmath>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kDotLoopSite = 0x53001;
constexpr std::uint64_t kHingeSite = 0x53002;
}  // namespace

LinearSvm::LinearSvm(trace::ExecCtx& ctx, mem::AddressSpace& space,
                     std::uint32_t vocab_size, double lambda)
    : ctx_(ctx), lambda_(lambda),
      weights_(space, vocab_size, 0.0, "svm_weights")
{
    DCB_EXPECTS(vocab_size >= 1);
    DCB_EXPECTS(lambda > 0.0);
}

double
LinearSvm::decision(const datagen::Document& doc)
{
    double dot = 0.0;
    for (std::size_t i = 0; i < doc.words.size(); ++i) {
        const std::uint32_t w = doc.words[i];
        ctx_.alu(4);  // feature hash + tf weighting
        ctx_.load(weights_.addr(w));
        dot += weights_[w];
        ctx_.fpu(1);
        ctx_.fpu(1, true);  // accumulation chain
        ctx_.branch(kDotLoopSite, i + 1 < doc.words.size());
    }
    return dot * scale_;
}

void
LinearSvm::train_step(const datagen::Document& doc)
{
    ++steps_;
    const double y = positive_label(doc) ? 1.0 : -1.0;
    const double eta = 1.0 / (lambda_ * static_cast<double>(steps_));
    const double margin = y * decision(doc);

    // Lazy L2 shrink: w <- (1 - eta*lambda) * w, folded into scale_.
    scale_ *= 1.0 - eta * lambda_;
    ctx_.fpu(2);
    if (scale_ < 1e-9)
        scale_ = 1e-9;

    const bool violates = margin < 1.0;
    ctx_.branch(kHingeSite, violates);
    if (violates) {
        const double step = eta * y / scale_;
        ctx_.fpu(2);
        for (std::size_t i = 0; i < doc.words.size(); ++i) {
            const std::uint32_t w = doc.words[i];
            ctx_.alu(4);
            ctx_.load(weights_.addr(w));
            weights_[w] += step;
            ctx_.fpu(2);
            ctx_.store(weights_.addr(w));
            ctx_.branch(kDotLoopSite, i + 1 < doc.words.size());
        }
    }
}

bool
LinearSvm::predict(const datagen::Document& doc)
{
    return decision(doc) >= 0.0;
}

}  // namespace dcb::analytics
