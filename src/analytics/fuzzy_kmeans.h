#ifndef DCBENCH_ANALYTICS_FUZZY_KMEANS_H_
#define DCBENCH_ANALYTICS_FUZZY_KMEANS_H_

/**
 * @file
 * Fuzzy K-means kernel (workload #7, Mahout): fuzzy c-means with soft
 * memberships u_pc = 1 / sum_j (d_pc / d_pj)^(2/(m-1)). Every point
 * contributes to every center, so the per-point FP work is several times
 * that of hard K-means -- matching Table I, where Fuzzy K-means retires
 * ~5x the instructions of K-means on the same 150 GB input.
 */

#include <cstdint>
#include <vector>

#include "analytics/simdata.h"
#include "trace/exec_ctx.h"

namespace dcb::analytics {

/** Result of one fuzzy c-means run. */
struct FuzzyKmeansResult
{
    std::uint32_t iterations = 0;
    double objective = 0.0;  ///< sum_pc u_pc^m d_pc^2
    std::vector<double> objective_history;
};

/** Narrated fuzzy c-means. */
class FuzzyKmeans
{
  public:
    /**
     * @param fuzziness The exponent m (> 1; Mahout default 2.0).
     */
    FuzzyKmeans(trace::ExecCtx& ctx, mem::AddressSpace& space,
                const std::vector<double>& points, std::size_t n,
                std::uint32_t dims, std::uint32_t k, double fuzziness);

    FuzzyKmeansResult run(std::uint32_t max_iters, double epsilon);

    const std::vector<double>& centers() const { return centers_.host(); }

    /** Soft membership of point p in cluster c after the last run. */
    double membership(std::size_t p, std::uint32_t c) const
    {
        return memberships_[p * k_ + c];
    }

    // --- Block-wise pass API (op-budget friendly) ----------------------

    /** Zero the weighted-sum accumulators. */
    void begin_pass();

    /**
     * Process points [start, start+count).
     * @return Objective contribution of the block.
     */
    double process_block(std::size_t start, std::size_t count);

    /** Update the centers; returns the total center shift. */
    double finish_pass();

    std::size_t num_points() const { return n_; }

  private:
    double iterate(double* objective_out);

    trace::ExecCtx& ctx_;
    std::size_t n_;
    std::uint32_t dims_;
    std::uint32_t k_;
    double m_;
    SimVec<double> points_;
    SimVec<double> centers_;
    SimVec<double> num_;   ///< weighted sums (k x dims)
    SimVec<double> den_;   ///< weight totals (k)
    SimVec<double> dist_;  ///< per-point squared distances (k)
    SimVec<double> memberships_;  ///< n x k
};

}  // namespace dcb::analytics

#endif  // DCBENCH_ANALYTICS_FUZZY_KMEANS_H_
