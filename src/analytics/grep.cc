#include "analytics/grep.h"

#include <algorithm>

#include "util/assert.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kTailCmpSite = 0x6E001;
constexpr std::uint64_t kInnerSite = 0x6E002;
constexpr std::uint64_t kAdvanceSite = 0x6E003;
}  // namespace

Grep::Grep(trace::ExecCtx& ctx, mem::AddressSpace& space,
           std::string pattern, std::size_t buffer_bytes)
    : ctx_(ctx), pattern_(std::move(pattern)),
      buffer_(space, buffer_bytes, "grep_buffer")
{
    DCB_EXPECTS(!pattern_.empty());
    DCB_EXPECTS(buffer_bytes >= pattern_.size());
    const std::size_t m = pattern_.size();
    skip_.fill(static_cast<std::uint8_t>(std::min<std::size_t>(m, 255)));
    for (std::size_t i = 0; i + 1 < m; ++i) {
        skip_[static_cast<std::uint8_t>(pattern_[i])] =
            static_cast<std::uint8_t>(std::min<std::size_t>(m - 1 - i, 255));
    }
}

std::uint64_t
Grep::scan_line(std::string_view line)
{
    const std::size_t m = pattern_.size();
    const std::size_t n = line.size();
    bytes_scanned_ += n;

    // Stage the line through the simulated input buffer (record reader).
    if (cursor_ + n > buffer_.size())
        cursor_ = 0;
    const std::size_t line_off = cursor_;
    cursor_ += n;
    for (std::size_t i = 0; i < n; i += 64)
        ctx_.store(buffer_.addr(line_off + i));

    if (n < m)
        return 0;

    std::uint64_t found = 0;
    std::size_t pos = 0;
    while (pos + m <= n) {
        const std::uint8_t tail = static_cast<std::uint8_t>(
            line[pos + m - 1]);
        ctx_.load(buffer_.addr(line_off + pos + m - 1));
        ctx_.alu(4);  // skip-table lookup, bounds math, compare setup
        const bool tail_match = tail ==
            static_cast<std::uint8_t>(pattern_[m - 1]);
        ctx_.branch(kTailCmpSite, tail_match);
        if (tail_match) {
            // Verify the rest of the pattern right-to-left.
            bool ok = true;
            for (std::size_t k = 0; k + 1 < m; ++k) {
                const std::size_t idx = pos + m - 2 - k;
                ctx_.load(buffer_.addr(line_off + idx));
                const bool ch_ok = line[idx] == pattern_[m - 2 - k];
                ctx_.branch(kInnerSite, ch_ok);
                if (!ch_ok) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ++found;
                ctx_.alu(1);
                pos += m;
                ctx_.branch(kAdvanceSite, true);
                continue;
            }
        }
        pos += skip_[tail];
        ctx_.alu(1);
        ctx_.branch(kAdvanceSite, pos + m <= n);
    }
    matches_ += found;
    if (found)
        ++matching_lines_;
    return found;
}

}  // namespace dcb::analytics
