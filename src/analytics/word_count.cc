#include "analytics/word_count.h"

#include <bit>

#include "util/assert.h"
#include "util/rng.h"

namespace dcb::analytics {

namespace {
constexpr std::uint64_t kProbeSite = 0x3C001;
constexpr std::uint64_t kNewWordSite = 0x3C002;
}  // namespace

WordCounter::WordCounter(trace::ExecCtx& ctx, mem::AddressSpace& space,
                         std::size_t buckets)
    : ctx_(ctx), table_(space, buckets, Slot{}, "wordcount_table"),
      mask_(buckets - 1)
{
    DCB_EXPECTS(std::has_single_bit(buckets));
}

std::size_t
WordCounter::find_slot(std::uint32_t word, bool narrate) const
{
    std::size_t idx = util::mix64(word) & mask_;
    while (true) {
        if (narrate) {
            ctx_.alu(2);  // hash / index arithmetic
            ctx_.load(table_.addr(idx));
            ++probes_;
        }
        const Slot& slot = table_[idx];
        const bool done = slot.word == word || slot.word == kEmpty;
        if (narrate)
            ctx_.branch(kProbeSite, !done);
        if (done)
            return idx;
        idx = (idx + 1) & mask_;
    }
}

void
WordCounter::add(std::uint32_t word)
{
    DCB_EXPECTS(word != kEmpty);
    const std::size_t idx = find_slot(word, true);
    Slot& slot = table_[idx];
    const bool is_new = slot.word == kEmpty;
    ctx_.branch(kNewWordSite, is_new);
    if (is_new) {
        DCB_EXPECTS_MSG(distinct_ + 1 < table_.size(),
                        "wordcount table over capacity");
        slot.word = word;
        ++distinct_;
    }
    ++slot.count;
    ctx_.alu(1);
    ctx_.store(table_.addr(idx));
    ++total_;
}

void
WordCounter::add_document(const std::vector<std::uint32_t>& words)
{
    for (std::size_t i = 0; i < words.size(); ++i) {
        // Tokenizer: scan word bytes, classify delimiters, intern the
        // string (Text object churn in the real Hadoop WordCount).
        ctx_.alu(11);
        ctx_.branch(0x3C003, i + 1 < words.size());
        add(words[i]);
    }
}

std::uint64_t
WordCounter::count_of(std::uint32_t word) const
{
    const std::size_t idx = find_slot(word, false);
    return table_[idx].word == word ? table_[idx].count : 0;
}

}  // namespace dcb::analytics
