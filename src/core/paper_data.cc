#include "core/paper_data.h"

#include <unordered_map>

namespace dcb::core {

namespace {

// Columns: name, ipc, kernel, l1i, itlb, l2, l3r, dtlb, brmiss,
//          fetch, rat, load, store, rs, rob
const std::vector<PaperMetrics>&
metric_rows()
{
    static const std::vector<PaperMetrics> kRows = {
        // --- data analysis (Figure order) ----------------------------
        {"Naive Bayes", 0.52, 0.02, 4, 0.010, 6, 0.90, 2.00, 0.007,
         0.10, 0.08, 0.10, 0.05, 0.40, 0.27},
        {"SVM", 0.75, 0.02, 25, 0.100, 10, 0.88, 0.40, 0.012,
         0.18, 0.12, 0.08, 0.05, 0.37, 0.20},
        {"Grep", 0.95, 0.05, 20, 0.080, 5, 0.85, 0.25, 0.015,
         0.20, 0.12, 0.08, 0.05, 0.35, 0.20},
        {"WordCount", 0.90, 0.03, 25, 0.100, 8, 0.85, 0.30, 0.012,
         0.18, 0.12, 0.08, 0.05, 0.37, 0.20},
        {"K-means", 0.90, 0.02, 18, 0.080, 6, 0.85, 0.25, 0.005,
         0.16, 0.10, 0.09, 0.05, 0.40, 0.20},
        {"Fuzzy K-means", 0.85, 0.02, 20, 0.090, 7, 0.85, 0.25, 0.006,
         0.16, 0.10, 0.09, 0.05, 0.40, 0.20},
        {"PageRank", 0.70, 0.04, 28, 0.120, 25, 0.80, 0.60, 0.010,
         0.18, 0.10, 0.10, 0.05, 0.35, 0.22},
        {"Sort", 0.75, 0.24, 30, 0.150, 18, 0.82, 0.50, 0.020,
         0.20, 0.14, 0.10, 0.06, 0.30, 0.20},
        {"Hive-bench", 0.80, 0.04, 28, 0.120, 12, 0.85, 0.45, 0.015,
         0.18, 0.12, 0.09, 0.05, 0.36, 0.20},
        {"IBCF", 0.80, 0.03, 30, 0.130, 18, 0.85, 0.50, 0.010,
         0.18, 0.12, 0.09, 0.05, 0.36, 0.20},
        {"HMM", 0.65, 0.03, 25, 0.110, 6, 0.90, 0.35, 0.012,
         0.20, 0.12, 0.08, 0.05, 0.35, 0.20},
        // --- services (CloudSuite + SPECweb) --------------------------
        {"Software Testing", 0.55, 0.15, 15, 0.050, 20, 0.93, 0.90, 0.040,
         0.12, 0.45, 0.12, 0.05, 0.16, 0.10},
        {"Media Streaming", 0.45, 0.50, 70, 0.300, 55, 0.95, 1.20, 0.035,
         0.15, 0.58, 0.09, 0.04, 0.08, 0.06},
        {"Data Serving", 0.35, 0.48, 45, 0.280, 75, 0.95, 1.50, 0.050,
         0.13, 0.60, 0.09, 0.04, 0.08, 0.06},
        {"Web Search", 0.55, 0.42, 35, 0.150, 50, 0.94, 1.00, 0.040,
         0.12, 0.60, 0.09, 0.04, 0.09, 0.06},
        {"Web Serving", 0.30, 0.45, 50, 0.220, 65, 0.95, 1.30, 0.060,
         0.14, 0.60, 0.08, 0.04, 0.08, 0.06},
        {"SPECWeb", 0.40, 0.44, 45, 0.200, 60, 0.95, 1.20, 0.050,
         0.13, 0.62, 0.08, 0.04, 0.08, 0.05},
        // --- SPEC CPU2006 ----------------------------------------------
        {"SPECFP", 1.10, 0.01, 2, 0.020, 6, 0.85, 0.80, 0.020,
         0.04, 0.16, 0.20, 0.10, 0.30, 0.20},
        {"SPECINT", 0.95, 0.01, 1, 0.020, 8, 0.80, 1.20, 0.050,
         0.06, 0.18, 0.18, 0.08, 0.28, 0.22},
        // --- HPCC -------------------------------------------------------
        {"HPCC-COMM", 0.70, 0.35, 0.8, 0.010, 10, 0.70, 0.30, 0.010,
         0.10, 0.20, 0.15, 0.10, 0.25, 0.20},
        {"HPCC-DGEMM", 1.20, 0.01, 0.3, 0.005, 1, 0.80, 0.05, 0.003,
         0.02, 0.08, 0.15, 0.05, 0.50, 0.20},
        {"HPCC-FFT", 0.90, 0.02, 0.5, 0.005, 8, 0.50, 0.40, 0.004,
         0.04, 0.08, 0.20, 0.10, 0.33, 0.25},
        {"HPCC-HPL", 1.20, 0.01, 0.3, 0.005, 1, 0.80, 0.05, 0.004,
         0.02, 0.08, 0.15, 0.05, 0.50, 0.20},
        {"HPCC-PTRANS", 0.50, 0.05, 0.5, 0.005, 25, 0.50, 1.50, 0.003,
         0.03, 0.06, 0.25, 0.15, 0.21, 0.30},
        {"HPCC-RandomAccess", 0.25, 0.31, 0.8, 0.010, 90, 0.05, 2.40,
         0.001, 0.03, 0.06, 0.25, 0.10, 0.16, 0.40},
        {"HPCC-STREAM", 0.45, 0.02, 0.3, 0.005, 30, 0.20, 0.50, 0.001,
         0.02, 0.05, 0.25, 0.18, 0.15, 0.35},
    };
    return kRows;
}

}  // namespace

std::optional<PaperMetrics>
paper_metrics(const std::string& name)
{
    for (const auto& row : metric_rows())
        if (row.name == name)
            return row;
    return std::nullopt;
}

const std::vector<PaperTable1Row>&
paper_table1()
{
    static const std::vector<PaperTable1Row> kRows = {
        {"Sort", 150, 4578, "Hadoop example"},
        {"WordCount", 154, 3533, "Hadoop example"},
        {"Grep", 154, 1499, "Hadoop example"},
        {"Naive Bayes", 147, 68131, "mahout"},
        {"SVM", 148, 2051, "our implementation"},
        {"K-means", 150, 3227, "mahout"},
        {"Fuzzy K-means", 150, 15470, "mahout"},
        {"IBCF", 147, 32340, "mahout"},
        {"HMM", 147, 1841, "our implementation"},
        {"PageRank", 187, 18470, "mahout"},
        {"Hive-bench", 156, 3659, "Hivebench"},
    };
    return kRows;
}

const std::vector<PaperSpeedup>&
paper_speedups()
{
    // Figure 2, digitized approximately; 8-slave values span 3.3-8.2
    // with Naive Bayes at 6.6 (stated in the text).
    static const std::vector<PaperSpeedup> kRows = {
        {"Sort", 1.0, 2.4, 4.0},
        {"Grep", 1.0, 2.0, 3.3},
        {"WordCount", 1.0, 3.0, 5.5},
        {"SVM", 1.0, 3.7, 7.0},
        {"HMM", 1.0, 3.2, 6.0},
        {"IBCF", 1.0, 4.0, 8.2},
        {"hive-bench", 1.0, 2.8, 5.0},
        {"Fuzzy K-means", 1.0, 3.9, 7.8},
        {"K-means", 1.0, 3.8, 7.5},
        {"PageRank", 1.0, 3.0, 5.5},
        {"Naive Bayes", 1.0, 3.5, 6.6},
    };
    return kRows;
}

double
paper_disk_writes_per_second(const std::string& name)
{
    // Figure 5, digitized approximately; Sort is the stated maximum.
    static const std::unordered_map<std::string, double> kRates = {
        {"Sort", 300.0},        {"WordCount", 30.0}, {"Grep", 15.0},
        {"Naive Bayes", 20.0},  {"SVM", 10.0},       {"K-means", 15.0},
        {"Fuzzy K-means", 20.0}, {"IBCF", 60.0},     {"HMM", 10.0},
        {"PageRank", 100.0},    {"Hive-bench", 80.0},
    };
    const auto it = kRates.find(name);
    return it != kRates.end() ? it->second : 0.0;
}

}  // namespace dcb::core
