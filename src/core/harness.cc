#include "core/harness.h"

#include "util/assert.h"

namespace dcb::core {

cpu::CounterReport
run_workload(workloads::Workload& workload, const HarnessConfig& config)
{
    cpu::Core core(config.core_config, config.memory_config);
    if (config.run.warmup_ops > 0) {
        DCB_CONFIG_CHECK(config.run.warmup_ops < config.run.op_budget,
                         "warmup must be shorter than the op budget");
        core.set_counter_reset_at(config.run.warmup_ops);
    }
    if (config.use_pmu) {
        core.pmu().configure_events(cpu::default_event_set(),
                                    config.pmu_rotate_instr);
    }
    workload.run(core, config.run);
    return config.use_pmu
               ? cpu::make_report_from_pmu(workload.info().name, core)
               : cpu::make_report(workload.info().name, core);
}

cpu::CounterReport
run_workload(const std::string& name, const HarnessConfig& config)
{
    auto workload = workloads::make_workload(name);
    DCB_CONFIG_CHECK(workload != nullptr, "unknown workload name");
    return run_workload(*workload, config);
}

std::vector<cpu::CounterReport>
run_suite(const std::vector<std::string>& names,
          const HarnessConfig& config)
{
    std::vector<cpu::CounterReport> out;
    out.reserve(names.size());
    for (const auto& name : names)
        out.push_back(run_workload(name, config));
    return out;
}

HarnessConfig
bench_config()
{
    HarnessConfig config;
    config.run.op_budget = kBenchOpBudget;
    config.run.warmup_ops = kBenchWarmupOps;
    return config;
}

}  // namespace dcb::core
