#include "core/harness.h"

#include <algorithm>
#include <exception>

#include "sample/controller.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace dcb::core {

std::vector<cpu::CounterReport>
SuiteResult::reports() const
{
    std::vector<cpu::CounterReport> out;
    out.reserve(runs.size());
    for (const RunResult& run : runs)
        if (run.status.ok)
            out.push_back(run.report);
    return out;
}

std::size_t
SuiteResult::failure_count() const
{
    std::size_t n = 0;
    for (const RunResult& run : runs)
        if (!run.status.ok)
            ++n;
    return n;
}

cpu::CounterReport
run_workload(workloads::Workload& workload, const HarnessConfig& config)
{
    cpu::Core core(config.core_config, config.memory_config);
    // The sampled lead-in defaults to the exact-mode ramp-up discard so
    // both modes measure the same span of the op stream.
    const sample::SamplingController sampler(
        config.sampling, config.run.op_budget, config.run.warmup_ops);
    if (sampler.active()) {
        // The sampling schedule owns warmup: the ExecCtx fast-forwards
        // the lead-in and the core resets at sampling_warmup_done(), so
        // the op-count reset trigger must stay off.
        core.set_sample_layout(sampler.layout());
    } else if (config.run.warmup_ops > 0) {
        DCB_CONFIG_CHECK(config.run.warmup_ops < config.run.op_budget,
                         "warmup must be shorter than the op budget");
        core.set_counter_reset_at(config.run.warmup_ops);
    }
    if (config.use_pmu) {
        core.pmu().configure_events(cpu::default_event_set(),
                                    config.pmu_rotate_instr);
    }
    workload.run(core, config.run);
    if (sampler.active())
        return sampler.make_report(workload.info().name, core);
    return config.use_pmu
               ? cpu::make_report_from_pmu(workload.info().name, core)
               : cpu::make_report(workload.info().name, core);
}

RunResult
run_workload(const std::string& name, const HarnessConfig& config)
{
    RunResult result;
    auto workload = workloads::make_workload(name);
    if (workload == nullptr) {
        result.status.ok = false;
        result.status.error = "unknown workload '" + name +
                              "'; valid names:";
        for (const std::string& valid : workloads::figure_order())
            result.status.error += " '" + valid + "'";
        return result;
    }
    try {
        result.report = run_workload(*workload, config);
    } catch (const std::exception& e) {
        result.status.ok = false;
        result.status.error = "workload '" + name +
                              "' failed mid-run: " + e.what();
    }
    return result;
}

SuiteResult
run_suite(const std::vector<std::string>& names,
          const HarnessConfig& config)
{
    SuiteResult out;
    out.names = names;
    const unsigned jobs =
        std::min<std::size_t>(util::effective_thread_count(config.jobs),
                              std::max<std::size_t>(names.size(), 1));
    if (jobs <= 1 || names.size() <= 1) {
        out.runs.reserve(names.size());
        for (const auto& name : names)
            out.runs.push_back(run_workload(name, config));
        return out;
    }
    // Each task simulates a fully private machine and writes only its
    // own result slot, so the parallel suite is bit-identical to the
    // serial one and already in request order.
    out.runs.resize(names.size());
    util::ThreadPool pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.submit([&out, &names, &config, i] {
            try {
                out.runs[i] = run_workload(names[i], config);
            } catch (const std::exception& e) {
                // Pool tasks must not throw; report like a failed run.
                out.runs[i].status.ok = false;
                out.runs[i].status.error = e.what();
            }
        });
    }
    pool.wait_idle();
    return out;
}

HarnessConfig
bench_config()
{
    HarnessConfig config;
    config.run.op_budget = kBenchOpBudget;
    config.run.warmup_ops = kBenchWarmupOps;
    return config;
}

}  // namespace dcb::core
