#include "core/harness.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <exception>

#include "obs/extent.h"
#include "obs/json.h"
#include "sample/controller.h"
#include "util/assert.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace dcb::core {

namespace {

/** Workload name as a filesystem-safe fragment. */
std::string
sanitize_for_path(const std::string& name)
{
    std::string out = name;
    for (char& c : out) {
        const auto u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '-' && c != '.')
            c = '_';
    }
    return out;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start;
    return d.count();
}

/** The three phase-detection signals derived per interval row. */
constexpr std::size_t kPhaseSignals = 3;
const char* const kPhaseSignalNames[kPhaseSignals] = {
    "interval_ipc", "l3_mpki", "stall_share"};

/** Column indices the phase signals are computed from. */
struct PhaseColumns
{
    int ipc = -1;
    int inst = -1;
    int l3_miss = -1;
    int cycles = -1;
    int stalls[6] = {-1, -1, -1, -1, -1, -1};

    bool ok() const
    {
        if (ipc < 0 || inst < 0 || l3_miss < 0 || cycles < 0)
            return false;
        for (const int s : stalls)
            if (s < 0)
                return false;
        return true;
    }
};

PhaseColumns
resolve_phase_columns(const obs::TimeSeriesRecorder& rec)
{
    PhaseColumns c;
    c.ipc = rec.column_index("interval_ipc");
    c.inst = rec.column_index("inst_retired");
    c.l3_miss = rec.column_index("l3_miss");
    c.cycles = rec.column_index("cycles");
    static const char* const kStallCols[6] = {
        "fetch_stall",     "rat_stall",     "load_buf_stall",
        "store_buf_stall", "rs_full_stall", "rob_full_stall"};
    for (int i = 0; i < 6; ++i)
        c.stalls[i] = rec.column_index(kStallCols[i]);
    return c;
}

void
phase_signals_from_row(const PhaseColumns& c, const obs::IntervalRow& row,
                       double out[kPhaseSignals])
{
    const double inst = row.values[static_cast<std::size_t>(c.inst)];
    const double cycles = row.values[static_cast<std::size_t>(c.cycles)];
    double stall = 0.0;
    for (const int s : c.stalls)
        stall += row.values[static_cast<std::size_t>(s)];
    out[0] = row.values[static_cast<std::size_t>(c.ipc)];
    out[1] = inst > 0.0
                 ? row.values[static_cast<std::size_t>(c.l3_miss)] /
                       (inst / 1000.0)
                 : 0.0;
    out[2] = cycles > 0.0 ? stall / cycles : 0.0;
}

/**
 * Run phase detection over a finalized telemetry recorder: IPC / L3
 * MPKI / stall share per interval through the windowed mean-shift
 * change-point test. On a spilled recorder the rows stream back from
 * the extent file (O(extent) memory). Emits one span per phase on the
 * retired-op-index trace process when tracing is armed.
 */
std::shared_ptr<obs::PhaseDetector>
detect_run_phases(obs::TimeSeriesRecorder& rec,
                  const obs::PhaseConfig& config,
                  obs::TraceWriter* trace, std::uint64_t run_index,
                  const std::string& name)
{
    const PhaseColumns cols = resolve_phase_columns(rec);
    if (!cols.ok()) {
        util::warn("obs", "phase detection skipped: telemetry columns "
                          "missing for " + name);
        return nullptr;
    }
    auto detector =
        std::make_shared<obs::PhaseDetector>(kPhaseSignals, config);
    // Interval -> op-index mapping kept for the trace spans (1 retired
    // op = 1 "us" on kPhasePid).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
    const auto feed = [&](const obs::IntervalRow& row) {
        double sig[kPhaseSignals];
        phase_signals_from_row(cols, row, sig);
        detector->observe(sig);
        spans.emplace_back(row.first_op, row.op_count);
    };
    if (!rec.spilled()) {
        for (const obs::IntervalRow& row : rec.rows())
            feed(row);
    } else {
        obs::ExtentReader reader;
        if (!reader.open(rec.spill_path())) {
            util::warn("obs", "phase detection skipped: cannot reopen "
                              "telemetry spill " + rec.spill_path());
            return nullptr;
        }
        std::vector<obs::IntervalRow> batch;
        while (reader.next_extent(&batch))
            for (const obs::IntervalRow& row : batch)
                feed(row);
        if (!reader.error().empty()) {
            util::warn("obs", "phase detection skipped: telemetry "
                              "spill decode failed: " + reader.error());
            return nullptr;
        }
    }
    detector->finish();
    if (trace != nullptr && !spans.empty()) {
        trace->name_thread(obs::TraceWriter::kPhasePid, run_index, name);
        const std::vector<obs::Phase>& phases = detector->phases();
        for (std::size_t p = 0; p < phases.size(); ++p) {
            const obs::Phase& ph = phases[p];
            const std::uint64_t begin_op = spans[ph.begin].first;
            const auto& last = spans[ph.end - 1];
            const std::uint64_t end_op = last.first + last.second;
            std::string args = "{\"entry_score\": " +
                               obs::json_double(ph.entry_score);
            for (std::size_t s = 0; s < kPhaseSignals; ++s)
                args += ", \"" + std::string(kPhaseSignalNames[s]) +
                        "\": " + obs::json_double(ph.means[s]);
            args += "}";
            trace->complete("phase " + std::to_string(p), "phase",
                            obs::TraceWriter::kPhasePid, run_index,
                            static_cast<double>(begin_op),
                            static_cast<double>(end_op - begin_op),
                            args);
        }
    }
    return detector;
}

}  // namespace

std::vector<cpu::CounterReport>
SuiteResult::reports() const
{
    std::vector<cpu::CounterReport> out;
    out.reserve(runs.size());
    for (const RunResult& run : runs)
        if (run.status.ok)
            out.push_back(run.report);
    return out;
}

std::size_t
SuiteResult::failure_count() const
{
    std::size_t n = 0;
    for (const RunResult& run : runs)
        if (!run.status.ok)
            ++n;
    return n;
}

cpu::CounterReport
run_workload(workloads::Workload& workload, const HarnessConfig& config,
             RunArtifacts* artifacts, std::uint64_t run_index)
{
    const auto start = std::chrono::steady_clock::now();
    cpu::Core core(config.core_config, config.memory_config);
    // The sampled lead-in defaults to the exact-mode ramp-up discard so
    // both modes measure the same span of the op stream.
    const sample::SamplingController sampler(
        config.sampling, config.run.op_budget, config.run.warmup_ops);
    if (sampler.active()) {
        // The sampling schedule owns warmup: the ExecCtx fast-forwards
        // the lead-in and the core resets at sampling_warmup_done(), so
        // the op-count reset trigger must stay off.
        core.set_sample_layout(sampler.layout());
    } else if (config.run.warmup_ops > 0) {
        DCB_CONFIG_CHECK(config.run.warmup_ops < config.run.op_budget,
                         "warmup must be shorter than the op budget");
        core.set_counter_reset_at(config.run.warmup_ops);
    }
    const std::string& name = workload.info().name;
    std::shared_ptr<obs::TimeSeriesRecorder> recorder;
    if (config.telemetry.enabled() && !sampler.active()) {
        // Telemetry decomposes the exact measured stream; a sampled run
        // already decomposes into windows with its own error model.
        recorder = std::make_shared<obs::TimeSeriesRecorder>(
            cpu::Core::telemetry_columns(),
            cpu::Core::telemetry_additive());
        if (!config.telemetry.out_path.empty() &&
            config.telemetry.extent_rows > 0) {
            // Bounded-memory mode: rows spill to columnar extents once
            // the buffer fills; short runs never touch the spill file.
            recorder->enable_spill(config.telemetry.out_path +
                                       sanitize_for_path(name) +
                                       ".telemetry.dcx",
                                   config.telemetry.extent_rows);
        }
        core.set_telemetry(recorder.get(), config.telemetry.interval_ops);
    }
    double span_start_us = 0.0;
    if (config.trace != nullptr) {
        core.set_trace(config.trace, run_index);
        config.trace->name_thread(obs::TraceWriter::kHostPid, run_index,
                                  name);
        span_start_us = config.trace->now_us();
    }
    if (config.use_pmu) {
        core.pmu().configure_events(cpu::default_event_set(),
                                    config.pmu_rotate_instr);
    }
    workload.run(core, config.run);
    core.finish_observation();
    cpu::CounterReport report;
    if (sampler.active())
        report = sampler.make_report(name, core);
    else if (config.use_pmu)
        report = cpu::make_report_from_pmu(name, core);
    else
        report = cpu::make_report(name, core);
    if (config.trace != nullptr) {
        const double now_us = config.trace->now_us();
        config.trace->complete(
            name, "workload", obs::TraceWriter::kHostPid, run_index,
            span_start_us, now_us - span_start_us,
            "{\"instructions\": " + obs::json_double(report.instructions) +
                ", \"ipc\": " + obs::json_double(report.ipc) + "}");
    }
    std::shared_ptr<obs::PhaseDetector> phases;
    if (recorder != nullptr) {
        recorder->set_source(name, config.telemetry.interval_ops);
        if (!recorder->finalize_spill())
            util::warn("obs", "cannot commit telemetry spill " +
                                  recorder->spill_path());
        if (!config.telemetry.out_path.empty()) {
            const std::string base = config.telemetry.out_path +
                                     sanitize_for_path(name) +
                                     ".telemetry";
            if (config.telemetry.write_csv &&
                !recorder->write_csv(base + ".csv"))
                util::warn("obs", "cannot write " + base + ".csv");
            if (config.telemetry.write_json &&
                !recorder->write_json(base + ".json"))
                util::warn("obs", "cannot write " + base + ".json");
        }
        if (config.detect_phases)
            phases = detect_run_phases(*recorder, config.phase,
                                       config.trace, run_index, name);
    }
    if (artifacts != nullptr) {
        artifacts->telemetry = std::move(recorder);
        artifacts->phases = std::move(phases);
        artifacts->wall_seconds = seconds_since(start);
    }
    return report;
}

RunResult
run_workload(const std::string& name, const HarnessConfig& config,
             std::uint64_t run_index)
{
    RunResult result;
    auto workload = workloads::make_workload(name);
    if (workload == nullptr) {
        result.status.ok = false;
        result.status.error = "unknown workload '" + name +
                              "'; valid names:";
        for (const std::string& valid : workloads::figure_order())
            result.status.error += " '" + valid + "'";
        return result;
    }
    try {
        RunArtifacts artifacts;
        result.report = run_workload(*workload, config, &artifacts,
                                     run_index);
        result.telemetry = std::move(artifacts.telemetry);
        result.phases = std::move(artifacts.phases);
        result.wall_seconds = artifacts.wall_seconds;
    } catch (const std::exception& e) {
        result.status.ok = false;
        result.status.error = "workload '" + name +
                              "' failed mid-run: " + e.what();
    }
    return result;
}

SuiteResult
run_suite(const std::vector<std::string>& names,
          const HarnessConfig& config)
{
    SuiteResult out;
    out.names = names;
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t warn_mark = util::warning_sequence();
    const unsigned jobs =
        std::min<std::size_t>(util::effective_thread_count(config.jobs),
                              std::max<std::size_t>(names.size(), 1));
    out.jobs_used = jobs;
    if (jobs <= 1 || names.size() <= 1) {
        out.runs.reserve(names.size());
        for (std::size_t i = 0; i < names.size(); ++i)
            out.runs.push_back(run_workload(names[i], config, i));
        out.wall_seconds = seconds_since(start);
        out.warnings = util::warnings_since(warn_mark);
        return out;
    }
    // Each task simulates a fully private machine and writes only its
    // own result slot, so the parallel suite is bit-identical to the
    // serial one and already in request order.
    out.runs.resize(names.size());
    util::ThreadPool pool(jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        pool.submit([&out, &names, &config, i] {
            try {
                out.runs[i] = run_workload(names[i], config, i);
            } catch (const std::exception& e) {
                // Keep the failure on its own slot; the suite goes on.
                out.runs[i].status.ok = false;
                out.runs[i].status.error = e.what();
            } catch (...) {
                out.runs[i].status.ok = false;
                out.runs[i].status.error = "workload '" + names[i] +
                                           "' failed mid-run with a "
                                           "non-standard exception";
            }
        });
    }
    pool.wait_idle();
    // Belt and suspenders: anything that still escaped a task (the pool
    // captures instead of std::terminate) fails the suite cleanly.
    if (const std::exception_ptr escaped = pool.first_exception()) {
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(escaped);
        } catch (const std::exception& e) {
            what = e.what();
        } catch (...) {
        }
        for (RunResult& run : out.runs) {
            if (run.status.ok && run.report.workload.empty()) {
                run.status.ok = false;
                run.status.error =
                    "suite worker raised outside the run: " + what;
            }
        }
        util::warn("harness", "pool task threw: " + what);
    }
    out.wall_seconds = seconds_since(start);
    out.pool_tasks = pool.tasks_completed();
    out.pool_busy_seconds = pool.busy_seconds();
    if (out.wall_seconds > 0.0)
        out.pool_utilization = out.pool_busy_seconds /
                               (static_cast<double>(jobs) *
                                out.wall_seconds);
    for (const util::ThreadPool::WorkerStats& w : pool.worker_stats()) {
        out.worker_tasks.push_back(w.tasks);
        out.worker_busy_seconds.push_back(w.busy_seconds);
    }
    out.warnings = util::warnings_since(warn_mark);
    return out;
}

const std::vector<std::string>&
phase_signal_names()
{
    static const std::vector<std::string> names(
        kPhaseSignalNames, kPhaseSignalNames + kPhaseSignals);
    return names;
}

HarnessConfig
bench_config()
{
    HarnessConfig config;
    config.run.op_budget = kBenchOpBudget;
    config.run.warmup_ops = kBenchWarmupOps;
    return config;
}

}  // namespace dcb::core
