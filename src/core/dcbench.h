#ifndef DCBENCH_CORE_DCBENCH_H_
#define DCBENCH_CORE_DCBENCH_H_

/**
 * @file
 * Umbrella header: the DCBench-Repro public API.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   dcb::core::HarnessConfig config = dcb::core::bench_config();
 *   auto report = dcb::core::run_workload("WordCount", config);
 *   // report.ipc, report.l2_mpki, report.stalls, ...
 */

#include "core/domain_catalog.h"
#include "core/harness.h"
#include "core/paper_data.h"
#include "core/report.h"
#include "cpu/perf.h"
#include "mapreduce/cluster.h"
#include "workloads/registry.h"

#endif  // DCBENCH_CORE_DCBENCH_H_
