#include "core/domain_catalog.h"

namespace dcb::core {

const std::vector<DomainShare>&
domain_shares()
{
    static const std::vector<DomainShare> kShares = {
        {"Search Engine", 0.40},
        {"Social Network", 0.25},
        {"Electronic Commerce", 0.15},
        {"Media Streaming", 0.05},
        {"Others", 0.15},
    };
    return kShares;
}

const std::vector<Scenario>&
scenario_catalog()
{
    static const std::vector<Scenario> kCatalog = {
        {"Grep", "search engine", "Log analysis"},
        {"Grep", "social network", "Web information extraction"},
        {"Grep", "electronic commerce", "Fuzzy search"},
        {"Naive Bayes", "social network", "Spam recognition"},
        {"Naive Bayes", "electronic commerce", "Web page classification"},
        {"SVM", "social network", "Image Processing"},
        {"SVM", "electronic commerce", "Data Mining"},
        {"SVM", "electronic commerce", "Text Categorization"},
        {"PageRank", "search engine", "Compute the page rank"},
        {"Fuzzy K-means", "search engine", "Image processing"},
        {"Fuzzy K-means", "social network", "High-resolution landform"},
        {"K-means", "electronic commerce", "Classification"},
        {"K-means", "social network", "Speech recognition"},
        {"HMM", "search engine", "Word Segmentation"},
        {"HMM", "search engine", "Handwriting recognition"},
        {"WordCount", "search engine", "Word frequency count"},
        {"WordCount", "social network", "Calculating the TF-IDF value"},
        {"WordCount", "electronic commerce",
         "Obtaining the user operations count"},
        {"Sort", "electronic commerce", "Document sorting"},
        {"Sort", "search engine", "Pages sorting"},
        {"IBCF", "electronic commerce", "Recommend the right products"},
        {"IBCF", "social network", "Recommend friends"},
        {"IBCF", "search engine", "Recommend key words"},
        {"Hive-bench", "search engine", "Data warehouse operations"},
        {"Hive-bench", "social network", "Data warehouse operations"},
        {"Hive-bench", "electronic commerce", "Data warehouse operations"},
    };
    return kCatalog;
}

std::vector<Scenario>
scenarios_for(const std::string& workload)
{
    std::vector<Scenario> out;
    for (const auto& s : scenario_catalog())
        if (s.workload == workload)
            out.push_back(s);
    return out;
}

}  // namespace dcb::core
