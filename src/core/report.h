#ifndef DCBENCH_CORE_REPORT_H_
#define DCBENCH_CORE_REPORT_H_

/**
 * @file
 * Report rendering shared by the figure benches: paper-vs-measured
 * tables, CSV export and class-average summaries.
 */

#include <functional>
#include <string>
#include <vector>

#include "cpu/perf.h"

namespace dcb::core {

/** Pull one scalar out of a report. */
using MetricGetter = std::function<double(const cpu::CounterReport&)>;
/** Paper reference for one workload; negative means "not reported". */
using PaperGetter = std::function<double(const std::string&)>;

/**
 * Print a figure-style table: one row per workload with the measured
 * value and the paper's (approximately digitized) value, and optionally
 * dump the same rows to `csv_path`.
 *
 * When `stderr_metric` names a ReportMetric and any report was built by
 * interval sampling, the table and CSV gain a standard-error column
 * (value +/- stderr across detailed windows). Exact runs render the
 * historical three-column layout byte-for-byte.
 */
void print_figure_table(const std::string& title,
                        const std::vector<cpu::CounterReport>& reports,
                        const std::string& metric_header,
                        const MetricGetter& measured,
                        const PaperGetter& paper, int decimals,
                        const std::string& csv_path = "",
                        cpu::ReportMetric stderr_metric =
                            cpu::ReportMetric::kCount,
                        double stderr_scale = 1.0);

/** Mean of a metric over the named subset of reports. */
double class_average(const std::vector<cpu::CounterReport>& reports,
                     const std::vector<std::string>& names,
                     const MetricGetter& metric);

/**
 * Print a PASS/SHAPE-MISS line for one ordering/threshold claim and
 * return whether it held. Benches use this to annotate each figure with
 * the paper findings it is expected to reproduce.
 */
bool shape_check(const std::string& claim, bool held);

}  // namespace dcb::core

#endif  // DCBENCH_CORE_REPORT_H_
