#ifndef DCBENCH_CORE_PAPER_DATA_H_
#define DCBENCH_CORE_PAPER_DATA_H_

/**
 * @file
 * Reference values from the paper, used by every bench binary to print
 * paper-vs-measured rows and by the integration tests to check shape.
 *
 * Provenance: values the paper states in text (averages, ranges, named
 * extremes) are exact; per-workload bar heights are *approximate
 * digitizations* of Figures 3-12 constrained to honour every textual
 * statement (e.g. DA IPC averages 0.78 with Naive Bayes lowest; services
 * average ~60 L2 MPKI; Media Streaming's L1I misses ~3x the DA average).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dcb::core {

/** Per-workload reference metrics (Figures 3-12). */
struct PaperMetrics
{
    std::string name;
    double ipc = 0.0;                 ///< Figure 3
    double kernel_frac = 0.0;         ///< Figure 4
    double l1i_mpki = 0.0;            ///< Figure 7
    double itlb_walk_pki = 0.0;       ///< Figure 8
    double l2_mpki = 0.0;             ///< Figure 9
    double l3_ratio = 0.0;            ///< Figure 10
    double dtlb_walk_pki = 0.0;       ///< Figure 11
    double br_mispred = 0.0;          ///< Figure 12 (ratio, not %)
    // Figure 6 normalized stall shares (sum to 1).
    double stall_fetch = 0.0;
    double stall_rat = 0.0;
    double stall_load = 0.0;
    double stall_store = 0.0;
    double stall_rs = 0.0;
    double stall_rob = 0.0;
};

/** Table I row. */
struct PaperTable1Row
{
    std::string name;
    double input_gb = 0.0;
    double instructions_g = 0.0;  ///< billions
    std::string source;
};

/** Figure 2 series (speedup at 1/4/8 slaves). */
struct PaperSpeedup
{
    std::string name;
    double slaves1 = 1.0;
    double slaves4 = 0.0;
    double slaves8 = 0.0;
};

/** Reference metrics for a workload; nullopt if not in the paper. */
std::optional<PaperMetrics> paper_metrics(const std::string& name);

/** All Table I rows in order. */
const std::vector<PaperTable1Row>& paper_table1();

/** All Figure 2 series. */
const std::vector<PaperSpeedup>& paper_speedups();

/** Figure 5 reference: disk writes per second per DA workload. */
double paper_disk_writes_per_second(const std::string& name);

// Class averages the paper states explicitly.
inline constexpr double kPaperDaIpcAvg = 0.78;
inline constexpr double kPaperDaL1iMpkiAvg = 23.0;
inline constexpr double kPaperDaL2MpkiAvg = 11.0;
inline constexpr double kPaperServiceL2MpkiAvg = 60.0;
inline constexpr double kPaperDaL3RatioAvg = 0.855;
inline constexpr double kPaperServiceL3RatioAvg = 0.949;
inline constexpr double kPaperDaOooStallShare = 0.57;   // RS+ROB
inline constexpr double kPaperServiceInOrderStallShare = 0.73;  // fetch+RAT

}  // namespace dcb::core

#endif  // DCBENCH_CORE_PAPER_DATA_H_
