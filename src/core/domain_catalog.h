#ifndef DCBENCH_CORE_DOMAIN_CATALOG_H_
#define DCBENCH_CORE_DOMAIN_CATALOG_H_

/**
 * @file
 * Application-domain catalog: Figure 1's top-site category shares (from
 * the Alexa-derived survey) and Table II's workload/scenario matrix,
 * which together justify the paper's workload selection.
 */

#include <string>
#include <vector>

namespace dcb::core {

/** One slice of Figure 1. */
struct DomainShare
{
    std::string domain;
    double share = 0.0;  ///< fraction of top-20 sites
};

/** One Table II row: workload x (domain, scenario). */
struct Scenario
{
    std::string workload;
    std::string domain;
    std::string scenario;
};

/** Figure 1 category shares (sum to 1). */
const std::vector<DomainShare>& domain_shares();

/** Table II scenario matrix. */
const std::vector<Scenario>& scenario_catalog();

/** Scenarios for one workload. */
std::vector<Scenario> scenarios_for(const std::string& workload);

}  // namespace dcb::core

#endif  // DCBENCH_CORE_DOMAIN_CATALOG_H_
