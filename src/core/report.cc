#include "core/report.h"

#include <cstdio>

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

namespace dcb::core {

void
print_figure_table(const std::string& title,
                   const std::vector<cpu::CounterReport>& reports,
                   const std::string& metric_header,
                   const MetricGetter& measured, const PaperGetter& paper,
                   int decimals, const std::string& csv_path,
                   cpu::ReportMetric stderr_metric, double stderr_scale)
{
    bool with_stderr = false;
    if (stderr_metric != cpu::ReportMetric::kCount)
        for (const auto& report : reports)
            with_stderr = with_stderr || report.sampled;

    if (with_stderr) {
        // Sampled runs: annotate every value with its standard error
        // across the detailed measurement windows.
        util::Table table({"workload", metric_header + " (measured)",
                           "+/- stderr", metric_header + " (paper)"});
        table.set_title(title);
        util::CsvWriter csv({"workload", "measured", "stderr", "paper"});
        for (const auto& report : reports) {
            const double value = measured(report);
            const double err =
                stderr_scale * report.stderr_of(stderr_metric);
            const double ref = paper ? paper(report.workload) : -1.0;
            table.add_row({report.workload,
                           util::format_double(value, decimals),
                           report.sampled
                               ? util::format_double(err, decimals + 1)
                               : "-",
                           ref >= 0.0
                               ? util::format_double(ref, decimals)
                               : "-"});
            csv.add_row({report.workload, util::format_double(value, 6),
                         util::format_double(err, 6),
                         util::format_double(ref, 6)});
        }
        table.print();
        if (!csv_path.empty() && csv.write_file(csv_path))
            std::printf("(csv: %s)\n", csv_path.c_str());
        std::printf("\n");
        return;
    }

    util::Table table({"workload", metric_header + " (measured)",
                       metric_header + " (paper)"});
    table.set_title(title);
    util::CsvWriter csv({"workload", "measured", "paper"});
    for (const auto& report : reports) {
        const double value = measured(report);
        const double ref = paper ? paper(report.workload) : -1.0;
        table.add_row({report.workload,
                       util::format_double(value, decimals),
                       ref >= 0.0 ? util::format_double(ref, decimals)
                                  : "-"});
        csv.add_row({report.workload, util::format_double(value, 6),
                     util::format_double(ref, 6)});
    }
    table.print();
    if (!csv_path.empty() && csv.write_file(csv_path))
        std::printf("(csv: %s)\n", csv_path.c_str());
    std::printf("\n");
}

double
class_average(const std::vector<cpu::CounterReport>& reports,
              const std::vector<std::string>& names,
              const MetricGetter& metric)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& report : reports) {
        for (const auto& name : names) {
            if (report.workload == name) {
                sum += metric(report);
                ++n;
            }
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

bool
shape_check(const std::string& claim, bool held)
{
    std::printf("  [%s] %s\n", held ? "PASS" : "SHAPE-MISS", claim.c_str());
    return held;
}

}  // namespace dcb::core
