#ifndef DCBENCH_CORE_HARNESS_H_
#define DCBENCH_CORE_HARNESS_H_

/**
 * @file
 * The DCBench-Repro run harness: instantiates the Table III machine,
 * applies the paper's methodology (ramp-up discard, ~20-event perf-style
 * collection) and produces a CounterReport per workload.
 *
 * Runs are isolated: an unknown workload name or a workload that throws
 * mid-run is reported as a per-run RunStatus instead of aborting the
 * process, so a suite always returns the results it did collect.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/config.h"
#include "cpu/perf.h"
#include "mem/config.h"
#include "obs/phase.h"
#include "obs/time_series.h"
#include "obs/trace_writer.h"
#include "sample/plan.h"
#include "workloads/registry.h"

namespace dcb::core {

/** Everything configurable about a measured run. */
struct HarnessConfig
{
    workloads::RunConfig run{};
    cpu::CoreConfig core_config = cpu::westmere_core_config();
    mem::MemoryConfig memory_config = mem::westmere_memory_config();
    /**
     * Collect through the multiplexed PMU (the paper's actual
     * methodology) instead of the always-on counters. Slightly noisier;
     * the two paths agree within multiplexing error.
     */
    bool use_pmu = false;
    std::uint64_t pmu_rotate_instr = 50'000;
    /**
     * Worker threads for run_suite (0 = one per hardware thread). Each
     * workload runs on its own fully private simulated machine, so a
     * parallel suite is bit-identical to a serial one; results are
     * returned in request order either way.
     */
    unsigned jobs = 1;
    /**
     * Interval-sampling plan. Disabled by default (ratio 0): the run is
     * exact and bit-identical to pre-sampling builds. When enabled the
     * run alternates functional fast-forward with detailed windows and
     * the report is extrapolated, with per-metric standard errors. A
     * plan warmup_ops of 0 borrows run.warmup_ops.
     */
    sample::SamplePlan sampling{};
    /**
     * Interval counter telemetry (perf stat -I analogue). Exact-mode
     * runs only: a sampled run already decomposes into measurement
     * windows, so the harness arms telemetry only when sampling is off.
     * Each run's recorder rides back on its RunResult; with a non-empty
     * out_path the harness also writes
     * `<out_path><workload>.telemetry.{csv,json}` per workload.
     */
    obs::TelemetryConfig telemetry{};
    /**
     * Optional trace-event collector, borrowed (one writer may span
     * many runs, benches and the cluster scheduler). When set, every
     * workload run becomes a host-time span on its own lane and the
     * core brackets its sampling segments. nullptr = no tracing, zero
     * cost.
     */
    obs::TraceWriter* trace = nullptr;
    /**
     * Online phase detection over the telemetry interval stream
     * (requires telemetry enabled; no effect otherwise). After each
     * run the harness feeds interval IPC, L3 MPKI and stall share into
     * a windowed mean-shift change-point detector (obs/phase.h); the
     * detector rides back on RunResult::phases and, when tracing is
     * armed, each phase becomes a span on the retired-op-index trace
     * process (TraceWriter::kPhasePid).
     */
    bool detect_phases = false;
    obs::PhaseConfig phase{};
};

/** Why a run produced no report. */
struct RunStatus
{
    bool ok = true;
    std::string error;  ///< empty when ok
};

/** One workload run: a report when ok, a diagnostic when not. */
struct RunResult
{
    cpu::CounterReport report;  ///< meaningful only when status.ok
    RunStatus status;
    /** Interval telemetry when enabled (exact mode), else null. */
    std::shared_ptr<obs::TimeSeriesRecorder> telemetry;
    /** Phase detector (finished) when detect_phases ran, else null.
        phase_boundaries() / phases() give the segmentation. */
    std::shared_ptr<obs::PhaseDetector> phases;
    double wall_seconds = 0.0;  ///< host wall time of this run
};

/** Results of a suite run, failures isolated per workload. */
struct SuiteResult
{
    std::vector<RunResult> runs;      ///< one per requested name
    std::vector<std::string> names;   ///< the requested names

    // Self-metrics: how the suite itself executed (run manifests and
    // bench JSON embed these).
    double wall_seconds = 0.0;       ///< whole-suite host wall time
    unsigned jobs_used = 1;          ///< resolved worker count
    std::uint64_t pool_tasks = 0;    ///< tasks run on the pool (0 = serial)
    double pool_busy_seconds = 0.0;  ///< summed in-task worker time
    /** Busy fraction of pool slots: busy / (jobs x wall); 0 = serial. */
    double pool_utilization = 0.0;
    /**
     * Per-worker execution tallies (empty for serial runs): the spread
     * across entries is the pool's load imbalance. Bench JSON and run
     * manifests embed these next to the aggregate pool metrics, the
     * same way the sharded cluster engine reports per-shard events
     * processed and barrier-wait seconds.
     */
    std::vector<std::uint64_t> worker_tasks;
    std::vector<double> worker_busy_seconds;
    /**
     * Per-shard engine stats when a cluster driver ran alongside the
     * suite (empty otherwise): wall seconds each shard's lane idled at
     * epoch barriers, and epochs in which a shard was drained by a
     * worker other than its round-robin home. Filled by the cluster
     * benches from mapreduce::ShardStats; host-side, never part of
     * deterministic dumps.
     */
    std::vector<double> shard_barrier_wait_seconds;
    std::vector<std::uint64_t> shard_steals;
    /** util::warn messages issued during the suite (bounded ring). */
    std::vector<std::string> warnings;

    /** Reports of the successful runs, in request order. */
    std::vector<cpu::CounterReport> reports() const;
    std::size_t failure_count() const;
    bool all_ok() const { return failure_count() == 0; }
};

/** Observability artifacts of one run (outputs of run_workload). */
struct RunArtifacts
{
    std::shared_ptr<obs::TimeSeriesRecorder> telemetry;
    std::shared_ptr<obs::PhaseDetector> phases;
    double wall_seconds = 0.0;
};

/**
 * Run one workload instance on a fresh core. `run_index` labels the
 * run's trace lane (suite position); `artifacts` receives telemetry
 * and timing when non-null.
 */
cpu::CounterReport run_workload(workloads::Workload& workload,
                                const HarnessConfig& config,
                                RunArtifacts* artifacts = nullptr,
                                std::uint64_t run_index = 0);

/**
 * Construct by name and run. Unknown names are a recoverable error: the
 * result's status lists the valid registry names instead of aborting.
 */
RunResult run_workload(const std::string& name,
                       const HarnessConfig& config,
                       std::uint64_t run_index = 0);

/**
 * Run a list of workloads, one fresh core each. A workload that fails
 * does not abort the suite; its RunStatus carries the diagnostic and
 * the remaining workloads still run. With config.jobs != 1 the
 * workloads run on a thread pool; the result is bit-identical to the
 * serial run and ordered by request position.
 */
SuiteResult run_suite(const std::vector<std::string>& names,
                      const HarnessConfig& config);

/**
 * Names of the phase-detection signals the harness feeds, in detector
 * signal order (PhaseDetector::to_json wants them back).
 */
const std::vector<std::string>& phase_signal_names();

/** Default op budget used by the bench binaries. */
inline constexpr std::uint64_t kBenchOpBudget = 6'000'000;
/** Default warm-up discarded before measurement. */
inline constexpr std::uint64_t kBenchWarmupOps = 500'000;

/** HarnessConfig preset used by the figure benches. */
HarnessConfig bench_config();

}  // namespace dcb::core

#endif  // DCBENCH_CORE_HARNESS_H_
