#include "os/syscalls.h"

#include "util/assert.h"
#include "util/rng.h"

namespace dcb::os {

trace::CodeLayout
kernel_code_layout(std::uint64_t base, std::uint64_t seed)
{
    std::vector<trace::CodeRegionSpec> specs;
    // Hot syscall entry + copy loops: small, very warm.
    specs.push_back({"kernel_hot", 48, 320, 0.58, 0.7, 48.0});
    // VFS / block / net subsystem paths.
    specs.push_back({"kernel_subsys", 1200, 384, 0.41, 0.8, 24.0});
    // Cold driver and housekeeping code.
    specs.push_back({"kernel_cold", 4000, 384, 0.01, 0.9, 16.0});
    return trace::CodeLayout(std::move(specs), base, seed);
}

OsModel::OsModel(trace::ExecCtx& ctx, mem::AddressSpace& space, Disk& disk,
                 Network& net, const SyscallCosts& costs)
    : ctx_(ctx), disk_(disk), net_(net), costs_(costs),
      bounce_(space.alloc(costs.bounce_buffer_bytes, "kernel_bounce")),
      branch_site_base_(util::mix64(0xBADC0FFEEULL))
{
    DCB_CONFIG_CHECK(costs.copy_bytes_per_pair >= 8,
                     "copy granularity must be at least 8 bytes");
}

std::uint64_t
OsModel::kernel_instructions() const
{
    return ctx_.counts().kernel_ops;
}

std::uint64_t
OsModel::next_bounce_addr(std::uint64_t bytes)
{
    if (bounce_cursor_ + bytes > bounce_.size)
        bounce_cursor_ = 0;
    const std::uint64_t addr = bounce_.base + bounce_cursor_;
    bounce_cursor_ += bytes;
    return addr;
}

void
OsModel::kernel_path(std::uint32_t path_instrs)
{
    // Kernel code: ALU-heavy with pointer loads (file/socket structs,
    // queue manipulation) and moderately predictable branches. The
    // pattern below emits ~16 ops per iteration: 10 ALU, 3 loads,
    // 2 stores, 1 branch.
    const std::uint64_t stack = next_bounce_addr(256);
    const std::uint32_t iters = path_instrs / 16 + 1;
    for (std::uint32_t i = 0; i < iters; ++i) {
        ctx_.alu(4);
        ctx_.load(stack + (i % 4) * 64);
        ctx_.alu(3);
        ctx_.chase_load(stack + ((i + 1) % 4) * 64);
        ctx_.alu(3);
        ctx_.load(stack + ((i * 3) % 4) * 64);
        ctx_.store(stack + (i % 4) * 64);
        ctx_.store(stack + ((i + 2) % 4) * 64);
        // Error-check branches: almost always not taken.
        ctx_.branch(branch_site_base_ + (i % 13), i % 29 == 0);
    }
}

void
OsModel::copy_user(std::uint64_t user_buf, std::uint64_t bytes)
{
    // copy_user_generic_string: a tight rep-mov loop, one load+store pair
    // per `copy_bytes_per_pair` bytes, plus a loop branch every 4 pairs.
    const std::uint64_t kbuf = next_bounce_addr(bytes);
    const std::uint64_t pairs = bytes / costs_.copy_bytes_per_pair + 1;
    const std::uint64_t site = branch_site_base_ + 101;
    for (std::uint64_t p = 0; p < pairs; ++p) {
        const std::uint64_t off = p * costs_.copy_bytes_per_pair;
        ctx_.load(user_buf + off);
        ctx_.store(kbuf + off);
        if ((p & 3) == 3)
            ctx_.branch(site, p + 4 < pairs);
    }
}

namespace {

/** 4 KB pages touched by an I/O of `bytes`. */
std::uint32_t
pages_of(std::uint64_t bytes)
{
    return static_cast<std::uint32_t>((bytes + 4095) / 4096);
}

}  // namespace

void
OsModel::set_fault_injector(fault::FaultInjector* injector)
{
    fault_injector_ = injector;
    // All-default plans can never fire; cache that so a fault-free run
    // pays nothing per syscall -- not even the injector's prob checks.
    faults_active_ = injector != nullptr && injector->plan().any_faults();
}

bool
OsModel::sys_write(std::uint64_t user_buf, std::uint64_t bytes)
{
    ctx_.set_mode(trace::Mode::kKernel);
    kernel_path(costs_.trap_instrs);
    // VFS entry plus per-page page-cache/block-layer work.
    kernel_path(costs_.file_path_instrs +
                pages_of(bytes) * costs_.file_page_write_instrs);
    copy_user(user_buf, bytes);
    // The error surfaces at the device, after the kernel has already
    // done the copy and block-layer work -- which is why retried writes
    // show up in the Figure 4 kernel-instruction accounting.
    if (faults_active_ && fault_injector_->disk_write_fails()) {
        kernel_path(costs_.file_path_instrs);  // error unwind path
        ctx_.set_mode(trace::Mode::kUser);
        last_io_seconds_ = disk_.write_error();
        return false;
    }
    ctx_.set_mode(trace::Mode::kUser);
    last_io_seconds_ = disk_.write(bytes);
    return true;
}

bool
OsModel::sys_read(std::uint64_t user_buf, std::uint64_t bytes)
{
    ctx_.set_mode(trace::Mode::kKernel);
    kernel_path(costs_.trap_instrs);
    kernel_path(costs_.file_path_instrs +
                pages_of(bytes) * costs_.file_page_read_instrs);
    if (faults_active_ && fault_injector_->disk_read_fails()) {
        kernel_path(costs_.file_path_instrs);  // error unwind path
        ctx_.set_mode(trace::Mode::kUser);
        last_io_seconds_ = disk_.read_error();
        return false;
    }
    copy_user(user_buf, bytes);
    ctx_.set_mode(trace::Mode::kUser);
    last_io_seconds_ = disk_.read(bytes);
    return true;
}

bool
OsModel::sys_send(std::uint64_t user_buf, std::uint64_t bytes)
{
    ctx_.set_mode(trace::Mode::kKernel);
    kernel_path(costs_.trap_instrs);
    kernel_path(costs_.socket_path_instrs +
                pages_of(bytes) * costs_.socket_page_instrs);
    copy_user(user_buf, bytes);
    if (faults_active_ && fault_injector_->net_send_times_out()) {
        kernel_path(costs_.socket_path_instrs);  // retransmit/teardown
        ctx_.set_mode(trace::Mode::kUser);
        last_io_seconds_ = net_.timeout(bytes);
        return false;
    }
    ctx_.set_mode(trace::Mode::kUser);
    last_io_seconds_ = net_.send(bytes);
    return true;
}

bool
OsModel::sys_recv(std::uint64_t user_buf, std::uint64_t bytes)
{
    ctx_.set_mode(trace::Mode::kKernel);
    kernel_path(costs_.trap_instrs);
    kernel_path(costs_.socket_path_instrs +
                pages_of(bytes) * costs_.socket_page_instrs);
    if (faults_active_ && fault_injector_->net_recv_drops()) {
        kernel_path(costs_.socket_path_instrs);  // connection reset path
        ctx_.set_mode(trace::Mode::kUser);
        net_.drop();
        last_io_seconds_ = 0.0;
        return false;
    }
    copy_user(user_buf, bytes);
    ctx_.set_mode(trace::Mode::kUser);
    last_io_seconds_ = 0.0;
    return true;
}

void
OsModel::sys_sched()
{
    ctx_.set_mode(trace::Mode::kKernel);
    kernel_path(costs_.trap_instrs);
    kernel_path(costs_.sched_path_instrs);
    ctx_.set_mode(trace::Mode::kUser);
}

}  // namespace dcb::os
