#ifndef DCBENCH_OS_DISK_H_
#define DCBENCH_OS_DISK_H_

/**
 * @file
 * Disk model: request/byte accounting plus a simple service-time model.
 *
 * Figure 5 of the paper reports disk writes per second from /proc data;
 * the request counters here provide the numerator, and the MapReduce
 * engine's simulated job duration provides the denominator. The
 * service-time model (seek + streaming bandwidth) also feeds task timing
 * in the cluster simulation.
 */

#include <cstdint>

namespace dcb::os {

/** Parameters of a 7.2k-rpm SATA disk of the paper's era. */
struct DiskParams
{
    double bandwidth_mb_s = 100.0;     ///< streaming bandwidth
    double request_latency_s = 0.004;  ///< per-request seek+rotate
    std::uint64_t request_bytes = 1 << 20;  ///< device request granularity
};

/** One node's disk. */
class Disk
{
  public:
    explicit Disk(const DiskParams& params = DiskParams{});

    /** Account a write of `bytes`; returns service time in seconds. */
    double write(std::uint64_t bytes);

    /** Account a read of `bytes`; returns service time in seconds. */
    double read(std::uint64_t bytes);

    /**
     * Account a failed write/read request (injected EIO): the device
     * still seeks and stays busy for one request latency, but no bytes
     * move. The caller decides whether (and when) to retry.
     */
    double write_error();
    double read_error();

    std::uint64_t bytes_written() const { return bytes_written_; }
    std::uint64_t bytes_read() const { return bytes_read_; }
    /** Device-level write requests (Figure 5 numerator). */
    std::uint64_t write_requests() const { return write_requests_; }
    std::uint64_t read_requests() const { return read_requests_; }
    /** Injected I/O errors observed (fault-injection accounting). */
    std::uint64_t write_errors() const { return write_errors_; }
    std::uint64_t read_errors() const { return read_errors_; }

    /** Total busy time accumulated (seconds). */
    double busy_seconds() const { return busy_seconds_; }

    void reset();

  private:
    std::uint64_t requests_for(std::uint64_t bytes) const;
    double service_time(std::uint64_t bytes) const;

    DiskParams params_;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t write_requests_ = 0;
    std::uint64_t read_requests_ = 0;
    std::uint64_t write_errors_ = 0;
    std::uint64_t read_errors_ = 0;
    double busy_seconds_ = 0.0;
};

}  // namespace dcb::os

#endif  // DCBENCH_OS_DISK_H_
