#include "os/network.h"

#include "util/assert.h"

namespace dcb::os {

Network::Network(const NetworkParams& params) : params_(params)
{
    DCB_CONFIG_CHECK(params.bandwidth_mb_s > 0.0,
                     "network bandwidth must be positive");
}

double
Network::transfer_seconds(std::uint64_t bytes,
                          std::uint32_t concurrent_flows) const
{
    if (concurrent_flows == 0)
        concurrent_flows = 1;
    const double effective = params_.bandwidth_mb_s /
                             static_cast<double>(concurrent_flows);
    return params_.message_latency_s +
           static_cast<double>(bytes) / (effective * 1024.0 * 1024.0);
}

double
Network::send(std::uint64_t bytes, std::uint32_t concurrent_flows)
{
    bytes_sent_ += bytes;
    ++messages_;
    return transfer_seconds(bytes, concurrent_flows);
}

double
Network::timeout(std::uint64_t bytes)
{
    ++timeouts_;
    ++messages_;
    // The payload crossed the wire (perhaps repeatedly) without being
    // acknowledged; charge one serialization worth of busy time.
    return transfer_seconds(bytes, 1);
}

void
Network::reset()
{
    bytes_sent_ = 0;
    messages_ = 0;
    timeouts_ = 0;
    drops_ = 0;
}

}  // namespace dcb::os
