#ifndef DCBENCH_OS_NETWORK_H_
#define DCBENCH_OS_NETWORK_H_

/**
 * @file
 * Network model: the 1 Gb Ethernet connecting the paper's Hadoop nodes
 * (Section III-A). Point-to-point transfers have a per-message latency
 * plus serialization at link bandwidth; a shared-fabric helper scales
 * effective bandwidth when many flows cross the same link (all-to-all
 * shuffle), which is what bends the Figure 2 speedup curves for
 * shuffle-heavy jobs.
 */

#include <cstdint>

namespace dcb::os {

/** 1 GbE link parameters. */
struct NetworkParams
{
    double bandwidth_mb_s = 117.0;     ///< 1 Gb/s minus framing
    double message_latency_s = 0.0002;
};

/** A node's NIC / the cluster fabric. */
class Network
{
  public:
    explicit Network(const NetworkParams& params = NetworkParams{});

    /**
     * Time to move `bytes` point-to-point when `concurrent_flows` flows
     * share the receiver's link.
     */
    double transfer_seconds(std::uint64_t bytes,
                            std::uint32_t concurrent_flows = 1) const;

    /** Account an outbound transfer; returns service time. */
    double send(std::uint64_t bytes, std::uint32_t concurrent_flows = 1);

    /**
     * Account a send that timed out (TCP retransmits exhausted) or a
     * receive whose payload was lost: the wire time is wasted and the
     * caller decides whether to retry.
     */
    double timeout(std::uint64_t bytes);
    void drop() { ++drops_; }

    std::uint64_t bytes_sent() const { return bytes_sent_; }
    std::uint64_t messages() const { return messages_; }
    /** Injected network faults observed (fault-injection accounting). */
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t drops() const { return drops_; }

    void reset();

  private:
    NetworkParams params_;
    std::uint64_t bytes_sent_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t drops_ = 0;
};

}  // namespace dcb::os

#endif  // DCBENCH_OS_NETWORK_H_
