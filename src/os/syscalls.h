#ifndef DCBENCH_OS_SYSCALLS_H_
#define DCBENCH_OS_SYSCALLS_H_

/**
 * @file
 * Syscall instruction-stream model.
 *
 * The paper's Figure 4 shows service workloads retiring > 40% of their
 * instructions in kernel mode, data-analysis workloads ~4% (Sort ~24%,
 * HPCC-RandomAccess ~31% -- the latter dominated by
 * copy_user_generic_string, which the paper calls out explicitly). The
 * kernel-mode stream cannot come from our user-space kernels, so it is
 * generated here: each syscall switches the ExecCtx to kernel mode and
 * emits a realistic instruction sequence -- trap entry, the subsystem
 * path (VFS/block or socket/TCP), and for data-moving calls the
 * copy_to/from_user loop touching both the user buffer and a kernel
 * bounce-buffer ring -- then returns to user mode.
 */

#include <cstdint>

#include "fault/fault.h"
#include "mem/address_space.h"
#include "os/disk.h"
#include "os/network.h"
#include "trace/exec_ctx.h"

namespace dcb::os {

/**
 * Instruction footprint of the kernel (vmlinux hot paths + filesystem /
 * network subsystems). Shared by every workload's kernel-mode execution.
 */
trace::CodeLayout kernel_code_layout(std::uint64_t base, std::uint64_t seed);

/** Instruction-cost parameters of the kernel paths. */
struct SyscallCosts
{
    /** Trap entry/exit, register save/restore, syscall dispatch. */
    std::uint32_t trap_instrs = 180;
    /** VFS + page-cache + block layer per read/write call. */
    std::uint32_t file_path_instrs = 650;
    /** Socket + TCP/IP stack per send/recv call. */
    std::uint32_t socket_path_instrs = 1100;
    /** Scheduler path (futex/yield/select). */
    std::uint32_t sched_path_instrs = 420;
    /** Page-cache/block-layer work per 4 KB page read. */
    std::uint32_t file_page_read_instrs = 1500;
    /** Per-page write cost: allocation, journaling, writeback, and the
        receiving end of the HDFS replication pipeline. */
    std::uint32_t file_page_write_instrs = 4500;
    /** skb/segmentation work per 4 KB page of socket I/O. */
    std::uint32_t socket_page_instrs = 220;
    /** Bytes moved per load+store pair in copy_user (string ops). */
    std::uint32_t copy_bytes_per_pair = 64;
    /** Kernel bounce-buffer ring size (page cache working set). */
    std::uint64_t bounce_buffer_bytes = 1 << 20;
};

/** The OS personality of one simulated node/process. */
class OsModel
{
  public:
    /**
     * @param ctx   Execution context to emit kernel instructions into.
     * @param space Address space for the kernel bounce buffers.
     * @param disk  Node disk (byte/request accounting).
     * @param net   Node NIC.
     * @param costs Kernel path costs.
     */
    OsModel(trace::ExecCtx& ctx, mem::AddressSpace& space, Disk& disk,
            Network& net, const SyscallCosts& costs = SyscallCosts{});

    /**
     * Install a fault injector: data-moving syscalls then fail per its
     * plan (EIO, timeouts, drops), returning false. nullptr (the
     * default) restores the infallible behaviour. The injector must
     * outlive the OsModel.
     */
    void set_fault_injector(fault::FaultInjector* injector);

    /**
     * write(2) of `bytes` from a user buffer to a file. Returns false
     * when the operation failed under fault injection; the kernel entry,
     * subsystem path and copy work are charged either way (the error is
     * only detected at the device).
     */
    bool sys_write(std::uint64_t user_buf, std::uint64_t bytes);

    /** read(2) of `bytes` into a user buffer. */
    bool sys_read(std::uint64_t user_buf, std::uint64_t bytes);

    /** send(2)/sendto(2) over a socket. */
    bool sys_send(std::uint64_t user_buf, std::uint64_t bytes);

    /** recv(2) from a socket. */
    bool sys_recv(std::uint64_t user_buf, std::uint64_t bytes);

    /** Scheduling-class syscall (futex wait/wake, poll, yield). */
    void sys_sched();

    /**
     * Device service time (seconds) of the most recent data-moving
     * syscall: disk seek+transfer for read/write, NIC serialization for
     * send, 0 for recv (the receive path has no device model). Error
     * paths report the time the failed operation occupied the device.
     * This is the per-request latency sample the quantile sketches
     * aggregate.
     */
    double last_io_seconds() const { return last_io_seconds_; }

    Disk& disk() { return disk_; }
    Network& network() { return net_; }

    /** Kernel instructions emitted so far. */
    std::uint64_t kernel_instructions() const;

  private:
    void kernel_path(std::uint32_t path_instrs);
    void copy_user(std::uint64_t user_buf, std::uint64_t bytes);
    std::uint64_t next_bounce_addr(std::uint64_t bytes);

    trace::ExecCtx& ctx_;
    Disk& disk_;
    Network& net_;
    fault::FaultInjector* fault_injector_ = nullptr;
    /** False when no injector is installed or its plan is all-default,
        so fault-free runs never consult the injector per syscall. */
    bool faults_active_ = false;
    double last_io_seconds_ = 0.0;
    SyscallCosts costs_;
    mem::Region bounce_;
    std::uint64_t bounce_cursor_ = 0;
    std::uint64_t branch_site_base_;
};

}  // namespace dcb::os

#endif  // DCBENCH_OS_SYSCALLS_H_
