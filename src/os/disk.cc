#include "os/disk.h"

#include "util/assert.h"

namespace dcb::os {

Disk::Disk(const DiskParams& params) : params_(params)
{
    DCB_CONFIG_CHECK(params.bandwidth_mb_s > 0.0,
                     "disk bandwidth must be positive");
    DCB_CONFIG_CHECK(params.request_bytes > 0,
                     "disk request granularity must be positive");
}

std::uint64_t
Disk::requests_for(std::uint64_t bytes) const
{
    return (bytes + params_.request_bytes - 1) / params_.request_bytes;
}

double
Disk::service_time(std::uint64_t bytes) const
{
    const double stream = static_cast<double>(bytes) /
                          (params_.bandwidth_mb_s * 1024.0 * 1024.0);
    return params_.request_latency_s + stream;
}

double
Disk::write(std::uint64_t bytes)
{
    bytes_written_ += bytes;
    write_requests_ += requests_for(bytes);
    const double t = service_time(bytes);
    busy_seconds_ += t;
    return t;
}

double
Disk::read(std::uint64_t bytes)
{
    bytes_read_ += bytes;
    read_requests_ += requests_for(bytes);
    const double t = service_time(bytes);
    busy_seconds_ += t;
    return t;
}

double
Disk::write_error()
{
    ++write_errors_;
    busy_seconds_ += params_.request_latency_s;
    return params_.request_latency_s;
}

double
Disk::read_error()
{
    ++read_errors_;
    busy_seconds_ += params_.request_latency_s;
    return params_.request_latency_s;
}

void
Disk::reset()
{
    bytes_written_ = 0;
    bytes_read_ = 0;
    write_requests_ = 0;
    read_requests_ = 0;
    write_errors_ = 0;
    read_errors_ = 0;
    busy_seconds_ = 0.0;
}

}  // namespace dcb::os
