#include "datagen/vectors.h"

#include "util/assert.h"

namespace dcb::datagen {

VectorGenerator::VectorGenerator(std::uint32_t dims,
                                 std::uint32_t true_centers, double spread,
                                 std::uint64_t seed)
    : dims_(dims), true_centers_(true_centers), spread_(spread), rng_(seed)
{
    DCB_EXPECTS(dims >= 1 && true_centers >= 1);
    DCB_EXPECTS(spread > 0.0);
}

void
VectorGenerator::center_of(std::uint32_t c, std::vector<double>& out) const
{
    out.assign(dims_, 0.0);
    // Deterministic lattice: each component offsets a subset of dims.
    std::uint64_t h = util::mix64(c + 1);
    for (std::uint32_t d = 0; d < dims_; ++d) {
        out[d] = static_cast<double>((h % 7)) * 10.0;
        h = util::mix64(h + d);
    }
}

void
VectorGenerator::next_point(std::vector<double>& out)
{
    last_component_ = static_cast<std::uint32_t>(
        rng_.next_below(true_centers_));
    center_of(last_component_, out);
    for (std::uint32_t d = 0; d < dims_; ++d)
        out[d] += rng_.next_gaussian() * spread_;
}

}  // namespace dcb::datagen
