#ifndef DCBENCH_DATAGEN_TABLES_H_
#define DCBENCH_DATAGEN_TABLES_H_

/**
 * @file
 * Relational table generators for the Hive-bench workload (Table I:
 * "156 GB DBtable"). The schemas follow the benchmark the paper cites
 * (HIVE-396 / the Pavlo et al. suite Hive-bench derives from):
 *
 *   rankings(pageURL, pageRank, avgDuration)
 *   uservisits(sourceIP, destURL, visitDate, adRevenue, ...)
 *
 * URL popularity is Zipfian so joins and group-bys see realistic key
 * skew.
 */

#include <cstdint>

#include "util/rng.h"
#include "util/zipf.h"

namespace dcb::datagen {

/** One row of the rankings table. */
struct RankingRow
{
    std::uint32_t page_url = 0;  ///< dense URL id
    std::uint32_t page_rank = 0;
    std::uint32_t avg_duration = 0;
};

/** One row of the uservisits table. */
struct UserVisitRow
{
    std::uint32_t source_ip = 0;
    std::uint32_t dest_url = 0;  ///< joins against RankingRow::page_url
    std::uint32_t visit_date = 0;  ///< days since epoch
    float ad_revenue = 0.0f;
};

/** Generator for both Hive-bench tables. */
class TableGenerator
{
  public:
    TableGenerator(std::uint32_t num_urls, std::uint32_t num_ips,
                   std::uint64_t seed);

    RankingRow next_ranking();
    UserVisitRow next_visit();

    std::uint32_t num_urls() const { return num_urls_; }

  private:
    std::uint32_t num_urls_;
    std::uint32_t num_ips_;
    std::uint32_t next_url_ = 0;
    util::ZipfSampler url_popularity_;
    util::Rng rng_;
};

}  // namespace dcb::datagen

#endif  // DCBENCH_DATAGEN_TABLES_H_
