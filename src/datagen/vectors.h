#ifndef DCBENCH_DATAGEN_VECTORS_H_
#define DCBENCH_DATAGEN_VECTORS_H_

/**
 * @file
 * Numeric vector generator for the clustering workloads (K-means, Fuzzy
 * K-means; Table I: "150 GB vector"). Points are drawn from a Gaussian
 * mixture with well-separated true centers so Lloyd iterations make real
 * progress and fuzzy memberships have structure.
 */

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dcb::datagen {

/** Gaussian-mixture point source. */
class VectorGenerator
{
  public:
    /**
     * @param dims        Dimensionality of the points.
     * @param true_centers Number of mixture components.
     * @param spread      Component standard deviation (centers sit on a
     *                    lattice of pitch 10).
     * @param seed        Determinism seed.
     */
    VectorGenerator(std::uint32_t dims, std::uint32_t true_centers,
                    double spread, std::uint64_t seed);

    /** Fill `out` (resized to dims) with the next point. */
    void next_point(std::vector<double>& out);

    /** Component the last point was drawn from (oracle for tests). */
    std::uint32_t last_component() const { return last_component_; }

    std::uint32_t dims() const { return dims_; }
    std::uint32_t true_centers() const { return true_centers_; }

    /** Oracle center coordinates of component c. */
    void center_of(std::uint32_t c, std::vector<double>& out) const;

  private:
    std::uint32_t dims_;
    std::uint32_t true_centers_;
    double spread_;
    util::Rng rng_;
    std::uint32_t last_component_ = 0;
};

}  // namespace dcb::datagen

#endif  // DCBENCH_DATAGEN_VECTORS_H_
