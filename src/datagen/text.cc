#include "datagen/text.h"

#include "util/assert.h"

namespace dcb::datagen {

TextGenerator::TextGenerator(std::uint32_t vocab_size, double skew,
                             std::uint64_t seed)
    : vocab_size_(vocab_size), zipf_(vocab_size, skew), rng_(seed)
{
    DCB_EXPECTS(vocab_size >= 1);
}

std::uint32_t
TextGenerator::next_word()
{
    return static_cast<std::uint32_t>(zipf_.sample(rng_));
}

Document
TextGenerator::next_document(std::uint32_t mean_words)
{
    Document doc;
    const std::uint64_t len = 1 + rng_.next_geometric(mean_words,
                                                      mean_words * 16);
    doc.words.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i)
        doc.words.push_back(next_word());
    return doc;
}

std::string
TextGenerator::word_string(std::uint32_t id)
{
    // Deterministic pronounceable-ish token: alternating consonant/vowel
    // driven by a mixed id, length 3..12 growing with rarity.
    static const char kCons[] = "bcdfghjklmnpqrstvwxz";
    static const char kVowels[] = "aeiou";
    std::uint64_t h = util::mix64(id + 1);
    const std::size_t len = 3 + (id % 10);
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        if (i % 2 == 0) {
            out += kCons[h % 20];
            h /= 20;
        } else {
            out += kVowels[h % 5];
            h /= 5;
        }
        if (h < 32)
            h = util::mix64(h + id);
    }
    return out;
}

LabelledTextGenerator::LabelledTextGenerator(std::uint32_t vocab_size,
                                             std::uint32_t classes,
                                             double skew, std::uint64_t seed)
    : vocab_size_(vocab_size), classes_(classes), zipf_(vocab_size, skew),
      rng_(seed)
{
    DCB_EXPECTS(vocab_size >= classes && classes >= 2);
}

Document
LabelledTextGenerator::next_document(std::uint32_t mean_words)
{
    Document doc;
    doc.label = static_cast<std::int32_t>(rng_.next_below(classes_));
    const std::uint64_t len = 1 + rng_.next_geometric(mean_words,
                                                      mean_words * 16);
    doc.words.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        std::uint32_t w = static_cast<std::uint32_t>(zipf_.sample(rng_));
        // With 35% probability remap into the class's topic band: words
        // congruent to the label modulo the class count.
        if (rng_.next_bool(0.35))
            w = w - (w % classes_) + static_cast<std::uint32_t>(doc.label);
        if (w >= vocab_size_)
            w %= vocab_size_;
        doc.words.push_back(w);
    }
    return doc;
}

}  // namespace dcb::datagen
