#include "datagen/graph.h"

#include "util/assert.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace dcb::datagen {

CsrGraph
make_web_graph(std::uint32_t nodes, double mean_degree, double skew,
               std::uint64_t seed)
{
    DCB_EXPECTS(nodes >= 2);
    DCB_EXPECTS(mean_degree > 0.0);
    util::Rng rng(seed);
    util::ZipfSampler popularity(nodes, skew);

    CsrGraph g;
    g.num_nodes = nodes;
    g.row_offsets.reserve(nodes + 1);
    g.row_offsets.push_back(0);
    g.targets.reserve(static_cast<std::size_t>(nodes * mean_degree * 1.1));
    for (std::uint32_t v = 0; v < nodes; ++v) {
        const std::uint64_t degree =
            1 + rng.next_geometric(mean_degree - 1.0, 512);
        for (std::uint64_t e = 0; e < degree; ++e) {
            auto t = static_cast<std::uint32_t>(popularity.sample(rng));
            if (t == v)
                t = (t + 1) % nodes;  // no self loops
            g.targets.push_back(t);
        }
        g.row_offsets.push_back(g.targets.size());
    }
    return g;
}

}  // namespace dcb::datagen
