#include "datagen/tables.h"

#include "util/assert.h"

namespace dcb::datagen {

TableGenerator::TableGenerator(std::uint32_t num_urls, std::uint32_t num_ips,
                               std::uint64_t seed)
    : num_urls_(num_urls), num_ips_(num_ips),
      url_popularity_(num_urls, 0.85), rng_(seed)
{
    DCB_EXPECTS(num_urls >= 1 && num_ips >= 1);
}

RankingRow
TableGenerator::next_ranking()
{
    RankingRow row;
    row.page_url = next_url_;
    next_url_ = (next_url_ + 1) % num_urls_;
    row.page_rank = static_cast<std::uint32_t>(rng_.next_geometric(80, 9999));
    row.avg_duration =
        static_cast<std::uint32_t>(1 + rng_.next_below(120));
    return row;
}

UserVisitRow
TableGenerator::next_visit()
{
    UserVisitRow row;
    row.source_ip = static_cast<std::uint32_t>(rng_.next_below(num_ips_));
    row.dest_url =
        static_cast<std::uint32_t>(url_popularity_.sample(rng_));
    row.visit_date =
        static_cast<std::uint32_t>(14000 + rng_.next_below(3650));
    row.ad_revenue = static_cast<float>(rng_.next_double() * 0.9 + 0.1);
    return row;
}

}  // namespace dcb::datagen
