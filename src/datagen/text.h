#ifndef DCBENCH_DATAGEN_TEXT_H_
#define DCBENCH_DATAGEN_TEXT_H_

/**
 * @file
 * Synthetic text corpora.
 *
 * Stands in for the paper's 147-154 GB document/HTML inputs (Table I):
 * word frequencies follow Zipf's law as in natural language, documents
 * have log-normal-ish length variation, and labelled documents are drawn
 * from per-class topic distributions so classifiers (Naive Bayes, SVM)
 * have real signal to learn. Word ids map deterministically to printable
 * strings so string-processing kernels (Grep, Sort, WordCount) exercise
 * byte-level work.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace dcb::datagen {

/** A document as a sequence of vocabulary ids. */
struct Document
{
    std::vector<std::uint32_t> words;
    std::int32_t label = -1;  ///< class id for labelled corpora, else -1
};

/** Zipfian text generator over a fixed vocabulary. */
class TextGenerator
{
  public:
    /**
     * @param vocab_size Vocabulary cardinality.
     * @param skew       Zipf exponent (~1.0 for natural language).
     * @param seed       Determinism seed.
     */
    TextGenerator(std::uint32_t vocab_size, double skew, std::uint64_t seed);

    /** Draw one document of approximately `mean_words` words. */
    Document next_document(std::uint32_t mean_words);

    /** Draw one word id from the corpus distribution. */
    std::uint32_t next_word();

    /** Deterministic printable form of a word id (3-12 lowercase chars). */
    static std::string word_string(std::uint32_t id);

    std::uint32_t vocab_size() const { return vocab_size_; }

  private:
    std::uint32_t vocab_size_;
    util::ZipfSampler zipf_;
    util::Rng rng_;
};

/**
 * Labelled corpus: each class tilts the Zipf distribution toward its own
 * topic words, giving classifiers learnable structure.
 */
class LabelledTextGenerator
{
  public:
    LabelledTextGenerator(std::uint32_t vocab_size, std::uint32_t classes,
                          double skew, std::uint64_t seed);

    /** Draw a labelled document. */
    Document next_document(std::uint32_t mean_words);

    std::uint32_t num_classes() const { return classes_; }
    std::uint32_t vocab_size() const { return vocab_size_; }

  private:
    std::uint32_t vocab_size_;
    std::uint32_t classes_;
    util::ZipfSampler zipf_;
    util::Rng rng_;
};

}  // namespace dcb::datagen

#endif  // DCBENCH_DATAGEN_TEXT_H_
