#ifndef DCBENCH_DATAGEN_GRAPH_H_
#define DCBENCH_DATAGEN_GRAPH_H_

/**
 * @file
 * Web-graph generator for PageRank (Table I: "187 GB web page").
 * Produces a directed graph with power-law in-degree (preferential
 * attachment over a Zipf target distribution) in CSR form, matching the
 * locality structure real link graphs give the PageRank inner loop:
 * mostly-sequential source traversal with skewed, cache-unfriendly
 * scatter to destination ranks.
 */

#include <cstdint>
#include <vector>

namespace dcb::datagen {

/** Directed graph in compressed-sparse-row form (out-edges). */
struct CsrGraph
{
    std::uint32_t num_nodes = 0;
    std::vector<std::uint64_t> row_offsets;  ///< size num_nodes + 1
    std::vector<std::uint32_t> targets;      ///< size num_edges

    std::uint64_t num_edges() const { return targets.size(); }
    std::uint64_t out_degree(std::uint32_t v) const
    {
        return row_offsets[v + 1] - row_offsets[v];
    }
};

/**
 * Generate a power-law web graph.
 *
 * @param nodes        Node count.
 * @param mean_degree  Average out-degree.
 * @param skew         Zipf skew of target popularity (in-degree tail).
 * @param seed         Determinism seed.
 */
CsrGraph make_web_graph(std::uint32_t nodes, double mean_degree,
                        double skew, std::uint64_t seed);

}  // namespace dcb::datagen

#endif  // DCBENCH_DATAGEN_GRAPH_H_
