#ifndef DCBENCH_DATAGEN_RATINGS_H_
#define DCBENCH_DATAGEN_RATINGS_H_

/**
 * @file
 * User-item ratings generator for the IBCF recommendation workload
 * (Table I: "147 GB ratings data"). Item popularity is Zipfian (a few
 * blockbusters, a long tail) and each user has a latent taste vector so
 * item-item co-occurrence carries real signal for collaborative
 * filtering.
 */

#include <cstdint>

#include "util/rng.h"
#include "util/zipf.h"

namespace dcb::datagen {

/** One (user, item, rating) triple. */
struct Rating
{
    std::uint32_t user = 0;
    std::uint32_t item = 0;
    float score = 0.0f;  ///< 1..5
};

/** Ratings stream generator. */
class RatingsGenerator
{
  public:
    RatingsGenerator(std::uint32_t users, std::uint32_t items,
                     std::uint64_t seed);

    Rating next();

    std::uint32_t users() const { return users_; }
    std::uint32_t items() const { return items_; }

  private:
    std::uint32_t users_;
    std::uint32_t items_;
    util::ZipfSampler item_popularity_;
    util::Rng rng_;
};

}  // namespace dcb::datagen

#endif  // DCBENCH_DATAGEN_RATINGS_H_
