#include "datagen/ratings.h"

#include "util/assert.h"

namespace dcb::datagen {

RatingsGenerator::RatingsGenerator(std::uint32_t users, std::uint32_t items,
                                   std::uint64_t seed)
    : users_(users), items_(items), item_popularity_(items, 0.9), rng_(seed)
{
    DCB_EXPECTS(users >= 1 && items >= 1);
}

Rating
RatingsGenerator::next()
{
    Rating r;
    r.user = static_cast<std::uint32_t>(rng_.next_below(users_));
    r.item = static_cast<std::uint32_t>(item_popularity_.sample(rng_));
    // Latent taste: users rate items in "their" genre band higher. The
    // genre of an item is item % 8; user taste is user % 8.
    const std::uint32_t genre = r.item % 8;
    const std::uint32_t taste = r.user % 8;
    const double affinity = genre == taste ? 1.5 : 0.0;
    double score = 3.0 + affinity + rng_.next_gaussian() * 0.8;
    if (score < 1.0)
        score = 1.0;
    if (score > 5.0)
        score = 5.0;
    r.score = static_cast<float>(score);
    return r;
}

}  // namespace dcb::datagen
