file(REMOVE_RECURSE
  "CMakeFiles/fig12_branch.dir/fig12_branch.cpp.o"
  "CMakeFiles/fig12_branch.dir/fig12_branch.cpp.o.d"
  "fig12_branch"
  "fig12_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
