# Empty dependencies file for fig12_branch.
# This may be replaced when dependencies are built.
