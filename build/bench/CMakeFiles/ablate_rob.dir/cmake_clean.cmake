file(REMOVE_RECURSE
  "CMakeFiles/ablate_rob.dir/ablate_rob.cpp.o"
  "CMakeFiles/ablate_rob.dir/ablate_rob.cpp.o.d"
  "ablate_rob"
  "ablate_rob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
