# Empty compiler generated dependencies file for ablate_rob.
# This may be replaced when dependencies are built.
