file(REMOVE_RECURSE
  "CMakeFiles/ubench_substrate.dir/ubench_substrate.cpp.o"
  "CMakeFiles/ubench_substrate.dir/ubench_substrate.cpp.o.d"
  "ubench_substrate"
  "ubench_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
