# Empty dependencies file for ubench_substrate.
# This may be replaced when dependencies are built.
