file(REMOVE_RECURSE
  "CMakeFiles/fig08_itlb.dir/fig08_itlb.cpp.o"
  "CMakeFiles/fig08_itlb.dir/fig08_itlb.cpp.o.d"
  "fig08_itlb"
  "fig08_itlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_itlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
