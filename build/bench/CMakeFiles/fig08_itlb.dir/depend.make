# Empty dependencies file for fig08_itlb.
# This may be replaced when dependencies are built.
