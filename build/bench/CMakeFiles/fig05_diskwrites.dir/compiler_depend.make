# Empty compiler generated dependencies file for fig05_diskwrites.
# This may be replaced when dependencies are built.
