file(REMOVE_RECURSE
  "CMakeFiles/fig05_diskwrites.dir/fig05_diskwrites.cpp.o"
  "CMakeFiles/fig05_diskwrites.dir/fig05_diskwrites.cpp.o.d"
  "fig05_diskwrites"
  "fig05_diskwrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_diskwrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
