file(REMOVE_RECURSE
  "CMakeFiles/fig03_ipc.dir/fig03_ipc.cpp.o"
  "CMakeFiles/fig03_ipc.dir/fig03_ipc.cpp.o.d"
  "fig03_ipc"
  "fig03_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
