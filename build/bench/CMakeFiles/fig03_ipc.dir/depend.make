# Empty dependencies file for fig03_ipc.
# This may be replaced when dependencies are built.
