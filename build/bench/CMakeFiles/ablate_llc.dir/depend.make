# Empty dependencies file for ablate_llc.
# This may be replaced when dependencies are built.
