file(REMOVE_RECURSE
  "CMakeFiles/ablate_llc.dir/ablate_llc.cpp.o"
  "CMakeFiles/ablate_llc.dir/ablate_llc.cpp.o.d"
  "ablate_llc"
  "ablate_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
