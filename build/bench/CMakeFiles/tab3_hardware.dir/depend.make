# Empty dependencies file for tab3_hardware.
# This may be replaced when dependencies are built.
