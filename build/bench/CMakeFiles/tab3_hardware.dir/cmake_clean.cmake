file(REMOVE_RECURSE
  "CMakeFiles/tab3_hardware.dir/tab3_hardware.cpp.o"
  "CMakeFiles/tab3_hardware.dir/tab3_hardware.cpp.o.d"
  "tab3_hardware"
  "tab3_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
