file(REMOVE_RECURSE
  "CMakeFiles/fig07_l1i.dir/fig07_l1i.cpp.o"
  "CMakeFiles/fig07_l1i.dir/fig07_l1i.cpp.o.d"
  "fig07_l1i"
  "fig07_l1i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_l1i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
