# Empty compiler generated dependencies file for fig07_l1i.
# This may be replaced when dependencies are built.
