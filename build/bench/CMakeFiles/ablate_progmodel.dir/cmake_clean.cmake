file(REMOVE_RECURSE
  "CMakeFiles/ablate_progmodel.dir/ablate_progmodel.cpp.o"
  "CMakeFiles/ablate_progmodel.dir/ablate_progmodel.cpp.o.d"
  "ablate_progmodel"
  "ablate_progmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_progmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
