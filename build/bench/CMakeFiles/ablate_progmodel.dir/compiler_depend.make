# Empty compiler generated dependencies file for ablate_progmodel.
# This may be replaced when dependencies are built.
