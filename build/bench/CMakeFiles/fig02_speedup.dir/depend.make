# Empty dependencies file for fig02_speedup.
# This may be replaced when dependencies are built.
