file(REMOVE_RECURSE
  "CMakeFiles/fig02_speedup.dir/fig02_speedup.cpp.o"
  "CMakeFiles/fig02_speedup.dir/fig02_speedup.cpp.o.d"
  "fig02_speedup"
  "fig02_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
