# Empty dependencies file for ablate_codelayout.
# This may be replaced when dependencies are built.
