file(REMOVE_RECURSE
  "CMakeFiles/ablate_codelayout.dir/ablate_codelayout.cpp.o"
  "CMakeFiles/ablate_codelayout.dir/ablate_codelayout.cpp.o.d"
  "ablate_codelayout"
  "ablate_codelayout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_codelayout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
