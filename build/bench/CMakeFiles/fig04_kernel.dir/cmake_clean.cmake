file(REMOVE_RECURSE
  "CMakeFiles/fig04_kernel.dir/fig04_kernel.cpp.o"
  "CMakeFiles/fig04_kernel.dir/fig04_kernel.cpp.o.d"
  "fig04_kernel"
  "fig04_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
