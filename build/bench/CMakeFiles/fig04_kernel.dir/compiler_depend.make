# Empty compiler generated dependencies file for fig04_kernel.
# This may be replaced when dependencies are built.
