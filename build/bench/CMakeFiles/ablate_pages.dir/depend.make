# Empty dependencies file for ablate_pages.
# This may be replaced when dependencies are built.
