file(REMOVE_RECURSE
  "CMakeFiles/ablate_pages.dir/ablate_pages.cpp.o"
  "CMakeFiles/ablate_pages.dir/ablate_pages.cpp.o.d"
  "ablate_pages"
  "ablate_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
