file(REMOVE_RECURSE
  "CMakeFiles/fig10_l3ratio.dir/fig10_l3ratio.cpp.o"
  "CMakeFiles/fig10_l3ratio.dir/fig10_l3ratio.cpp.o.d"
  "fig10_l3ratio"
  "fig10_l3ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l3ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
