# Empty dependencies file for fig10_l3ratio.
# This may be replaced when dependencies are built.
