# Empty dependencies file for fig11_dtlb.
# This may be replaced when dependencies are built.
