file(REMOVE_RECURSE
  "CMakeFiles/fig11_dtlb.dir/fig11_dtlb.cpp.o"
  "CMakeFiles/fig11_dtlb.dir/fig11_dtlb.cpp.o.d"
  "fig11_dtlb"
  "fig11_dtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
