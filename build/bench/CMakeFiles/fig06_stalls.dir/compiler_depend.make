# Empty compiler generated dependencies file for fig06_stalls.
# This may be replaced when dependencies are built.
