file(REMOVE_RECURSE
  "CMakeFiles/fig06_stalls.dir/fig06_stalls.cpp.o"
  "CMakeFiles/fig06_stalls.dir/fig06_stalls.cpp.o.d"
  "fig06_stalls"
  "fig06_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
