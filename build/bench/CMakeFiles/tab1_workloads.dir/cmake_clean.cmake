file(REMOVE_RECURSE
  "CMakeFiles/tab1_workloads.dir/tab1_workloads.cpp.o"
  "CMakeFiles/tab1_workloads.dir/tab1_workloads.cpp.o.d"
  "tab1_workloads"
  "tab1_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
