# Empty compiler generated dependencies file for tab1_workloads.
# This may be replaced when dependencies are built.
