# Empty dependencies file for tab2_scenarios.
# This may be replaced when dependencies are built.
