file(REMOVE_RECURSE
  "CMakeFiles/tab2_scenarios.dir/tab2_scenarios.cpp.o"
  "CMakeFiles/tab2_scenarios.dir/tab2_scenarios.cpp.o.d"
  "tab2_scenarios"
  "tab2_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
