
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_l2.cpp" "bench/CMakeFiles/fig09_l2.dir/fig09_l2.cpp.o" "gcc" "bench/CMakeFiles/fig09_l2.dir/fig09_l2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dcb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dcb_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/dcb_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dcb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dcb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dcb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
