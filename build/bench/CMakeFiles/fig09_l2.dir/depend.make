# Empty dependencies file for fig09_l2.
# This may be replaced when dependencies are built.
