file(REMOVE_RECURSE
  "CMakeFiles/fig09_l2.dir/fig09_l2.cpp.o"
  "CMakeFiles/fig09_l2.dir/fig09_l2.cpp.o.d"
  "fig09_l2"
  "fig09_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
