# Empty dependencies file for ablate_branch.
# This may be replaced when dependencies are built.
