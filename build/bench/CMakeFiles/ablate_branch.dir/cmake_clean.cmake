file(REMOVE_RECURSE
  "CMakeFiles/ablate_branch.dir/ablate_branch.cpp.o"
  "CMakeFiles/ablate_branch.dir/ablate_branch.cpp.o.d"
  "ablate_branch"
  "ablate_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
