file(REMOVE_RECURSE
  "CMakeFiles/fig01_domains.dir/fig01_domains.cpp.o"
  "CMakeFiles/fig01_domains.dir/fig01_domains.cpp.o.d"
  "fig01_domains"
  "fig01_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
