# Empty dependencies file for fig01_domains.
# This may be replaced when dependencies are built.
