file(REMOVE_RECURSE
  "CMakeFiles/dcb_trace.dir/code_layout.cc.o"
  "CMakeFiles/dcb_trace.dir/code_layout.cc.o.d"
  "CMakeFiles/dcb_trace.dir/exec_ctx.cc.o"
  "CMakeFiles/dcb_trace.dir/exec_ctx.cc.o.d"
  "libdcb_trace.a"
  "libdcb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
