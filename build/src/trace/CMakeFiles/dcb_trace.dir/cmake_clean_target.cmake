file(REMOVE_RECURSE
  "libdcb_trace.a"
)
