# Empty dependencies file for dcb_trace.
# This may be replaced when dependencies are built.
