file(REMOVE_RECURSE
  "CMakeFiles/dcb_core.dir/domain_catalog.cc.o"
  "CMakeFiles/dcb_core.dir/domain_catalog.cc.o.d"
  "CMakeFiles/dcb_core.dir/harness.cc.o"
  "CMakeFiles/dcb_core.dir/harness.cc.o.d"
  "CMakeFiles/dcb_core.dir/paper_data.cc.o"
  "CMakeFiles/dcb_core.dir/paper_data.cc.o.d"
  "CMakeFiles/dcb_core.dir/report.cc.o"
  "CMakeFiles/dcb_core.dir/report.cc.o.d"
  "libdcb_core.a"
  "libdcb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
