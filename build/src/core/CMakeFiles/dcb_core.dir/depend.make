# Empty dependencies file for dcb_core.
# This may be replaced when dependencies are built.
