file(REMOVE_RECURSE
  "libdcb_core.a"
)
