
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/external_sort.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/external_sort.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/external_sort.cc.o.d"
  "/root/repo/src/analytics/fuzzy_kmeans.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/fuzzy_kmeans.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/fuzzy_kmeans.cc.o.d"
  "/root/repo/src/analytics/grep.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/grep.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/grep.cc.o.d"
  "/root/repo/src/analytics/hive.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/hive.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/hive.cc.o.d"
  "/root/repo/src/analytics/hmm.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/hmm.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/hmm.cc.o.d"
  "/root/repo/src/analytics/ibcf.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/ibcf.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/ibcf.cc.o.d"
  "/root/repo/src/analytics/kmeans.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/kmeans.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/kmeans.cc.o.d"
  "/root/repo/src/analytics/naive_bayes.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/naive_bayes.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/naive_bayes.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/pagerank.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/pagerank.cc.o.d"
  "/root/repo/src/analytics/svm.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/svm.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/svm.cc.o.d"
  "/root/repo/src/analytics/word_count.cc" "src/analytics/CMakeFiles/dcb_analytics.dir/word_count.cc.o" "gcc" "src/analytics/CMakeFiles/dcb_analytics.dir/word_count.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/dcb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
