file(REMOVE_RECURSE
  "CMakeFiles/dcb_analytics.dir/external_sort.cc.o"
  "CMakeFiles/dcb_analytics.dir/external_sort.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/fuzzy_kmeans.cc.o"
  "CMakeFiles/dcb_analytics.dir/fuzzy_kmeans.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/grep.cc.o"
  "CMakeFiles/dcb_analytics.dir/grep.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/hive.cc.o"
  "CMakeFiles/dcb_analytics.dir/hive.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/hmm.cc.o"
  "CMakeFiles/dcb_analytics.dir/hmm.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/ibcf.cc.o"
  "CMakeFiles/dcb_analytics.dir/ibcf.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/kmeans.cc.o"
  "CMakeFiles/dcb_analytics.dir/kmeans.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/naive_bayes.cc.o"
  "CMakeFiles/dcb_analytics.dir/naive_bayes.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/pagerank.cc.o"
  "CMakeFiles/dcb_analytics.dir/pagerank.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/svm.cc.o"
  "CMakeFiles/dcb_analytics.dir/svm.cc.o.d"
  "CMakeFiles/dcb_analytics.dir/word_count.cc.o"
  "CMakeFiles/dcb_analytics.dir/word_count.cc.o.d"
  "libdcb_analytics.a"
  "libdcb_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
