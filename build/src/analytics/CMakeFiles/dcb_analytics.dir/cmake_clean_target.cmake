file(REMOVE_RECURSE
  "libdcb_analytics.a"
)
