# Empty compiler generated dependencies file for dcb_analytics.
# This may be replaced when dependencies are built.
