file(REMOVE_RECURSE
  "libdcb_util.a"
)
