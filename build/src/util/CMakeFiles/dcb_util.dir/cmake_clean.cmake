file(REMOVE_RECURSE
  "CMakeFiles/dcb_util.dir/csv.cc.o"
  "CMakeFiles/dcb_util.dir/csv.cc.o.d"
  "CMakeFiles/dcb_util.dir/histogram.cc.o"
  "CMakeFiles/dcb_util.dir/histogram.cc.o.d"
  "CMakeFiles/dcb_util.dir/log.cc.o"
  "CMakeFiles/dcb_util.dir/log.cc.o.d"
  "CMakeFiles/dcb_util.dir/rng.cc.o"
  "CMakeFiles/dcb_util.dir/rng.cc.o.d"
  "CMakeFiles/dcb_util.dir/stats.cc.o"
  "CMakeFiles/dcb_util.dir/stats.cc.o.d"
  "CMakeFiles/dcb_util.dir/string_util.cc.o"
  "CMakeFiles/dcb_util.dir/string_util.cc.o.d"
  "CMakeFiles/dcb_util.dir/table.cc.o"
  "CMakeFiles/dcb_util.dir/table.cc.o.d"
  "CMakeFiles/dcb_util.dir/zipf.cc.o"
  "CMakeFiles/dcb_util.dir/zipf.cc.o.d"
  "libdcb_util.a"
  "libdcb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
