# Empty dependencies file for dcb_util.
# This may be replaced when dependencies are built.
