# Empty compiler generated dependencies file for dcb_mapreduce.
# This may be replaced when dependencies are built.
