file(REMOVE_RECURSE
  "CMakeFiles/dcb_mapreduce.dir/cluster.cc.o"
  "CMakeFiles/dcb_mapreduce.dir/cluster.cc.o.d"
  "CMakeFiles/dcb_mapreduce.dir/engine.cc.o"
  "CMakeFiles/dcb_mapreduce.dir/engine.cc.o.d"
  "CMakeFiles/dcb_mapreduce.dir/task_io.cc.o"
  "CMakeFiles/dcb_mapreduce.dir/task_io.cc.o.d"
  "libdcb_mapreduce.a"
  "libdcb_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
