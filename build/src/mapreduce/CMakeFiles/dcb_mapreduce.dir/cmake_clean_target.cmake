file(REMOVE_RECURSE
  "libdcb_mapreduce.a"
)
