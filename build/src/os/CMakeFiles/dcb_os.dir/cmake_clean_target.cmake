file(REMOVE_RECURSE
  "libdcb_os.a"
)
