# Empty dependencies file for dcb_os.
# This may be replaced when dependencies are built.
