
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/disk.cc" "src/os/CMakeFiles/dcb_os.dir/disk.cc.o" "gcc" "src/os/CMakeFiles/dcb_os.dir/disk.cc.o.d"
  "/root/repo/src/os/network.cc" "src/os/CMakeFiles/dcb_os.dir/network.cc.o" "gcc" "src/os/CMakeFiles/dcb_os.dir/network.cc.o.d"
  "/root/repo/src/os/syscalls.cc" "src/os/CMakeFiles/dcb_os.dir/syscalls.cc.o" "gcc" "src/os/CMakeFiles/dcb_os.dir/syscalls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/dcb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
