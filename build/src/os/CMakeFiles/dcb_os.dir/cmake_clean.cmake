file(REMOVE_RECURSE
  "CMakeFiles/dcb_os.dir/disk.cc.o"
  "CMakeFiles/dcb_os.dir/disk.cc.o.d"
  "CMakeFiles/dcb_os.dir/network.cc.o"
  "CMakeFiles/dcb_os.dir/network.cc.o.d"
  "CMakeFiles/dcb_os.dir/syscalls.cc.o"
  "CMakeFiles/dcb_os.dir/syscalls.cc.o.d"
  "libdcb_os.a"
  "libdcb_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
