file(REMOVE_RECURSE
  "CMakeFiles/dcb_workloads.dir/data_analysis.cc.o"
  "CMakeFiles/dcb_workloads.dir/data_analysis.cc.o.d"
  "CMakeFiles/dcb_workloads.dir/hpcc.cc.o"
  "CMakeFiles/dcb_workloads.dir/hpcc.cc.o.d"
  "CMakeFiles/dcb_workloads.dir/profiles.cc.o"
  "CMakeFiles/dcb_workloads.dir/profiles.cc.o.d"
  "CMakeFiles/dcb_workloads.dir/registry.cc.o"
  "CMakeFiles/dcb_workloads.dir/registry.cc.o.d"
  "CMakeFiles/dcb_workloads.dir/services.cc.o"
  "CMakeFiles/dcb_workloads.dir/services.cc.o.d"
  "CMakeFiles/dcb_workloads.dir/spec.cc.o"
  "CMakeFiles/dcb_workloads.dir/spec.cc.o.d"
  "libdcb_workloads.a"
  "libdcb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
