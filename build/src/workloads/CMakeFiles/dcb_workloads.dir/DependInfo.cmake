
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/data_analysis.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/data_analysis.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/data_analysis.cc.o.d"
  "/root/repo/src/workloads/hpcc.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/hpcc.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/hpcc.cc.o.d"
  "/root/repo/src/workloads/profiles.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/profiles.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/profiles.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/services.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/services.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/services.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/workloads/CMakeFiles/dcb_workloads.dir/spec.cc.o" "gcc" "src/workloads/CMakeFiles/dcb_workloads.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/dcb_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/dcb_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dcb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dcb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dcb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcb_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
