file(REMOVE_RECURSE
  "CMakeFiles/dcb_datagen.dir/graph.cc.o"
  "CMakeFiles/dcb_datagen.dir/graph.cc.o.d"
  "CMakeFiles/dcb_datagen.dir/ratings.cc.o"
  "CMakeFiles/dcb_datagen.dir/ratings.cc.o.d"
  "CMakeFiles/dcb_datagen.dir/tables.cc.o"
  "CMakeFiles/dcb_datagen.dir/tables.cc.o.d"
  "CMakeFiles/dcb_datagen.dir/text.cc.o"
  "CMakeFiles/dcb_datagen.dir/text.cc.o.d"
  "CMakeFiles/dcb_datagen.dir/vectors.cc.o"
  "CMakeFiles/dcb_datagen.dir/vectors.cc.o.d"
  "libdcb_datagen.a"
  "libdcb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
