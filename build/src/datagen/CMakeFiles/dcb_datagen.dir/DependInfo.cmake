
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/graph.cc" "src/datagen/CMakeFiles/dcb_datagen.dir/graph.cc.o" "gcc" "src/datagen/CMakeFiles/dcb_datagen.dir/graph.cc.o.d"
  "/root/repo/src/datagen/ratings.cc" "src/datagen/CMakeFiles/dcb_datagen.dir/ratings.cc.o" "gcc" "src/datagen/CMakeFiles/dcb_datagen.dir/ratings.cc.o.d"
  "/root/repo/src/datagen/tables.cc" "src/datagen/CMakeFiles/dcb_datagen.dir/tables.cc.o" "gcc" "src/datagen/CMakeFiles/dcb_datagen.dir/tables.cc.o.d"
  "/root/repo/src/datagen/text.cc" "src/datagen/CMakeFiles/dcb_datagen.dir/text.cc.o" "gcc" "src/datagen/CMakeFiles/dcb_datagen.dir/text.cc.o.d"
  "/root/repo/src/datagen/vectors.cc" "src/datagen/CMakeFiles/dcb_datagen.dir/vectors.cc.o" "gcc" "src/datagen/CMakeFiles/dcb_datagen.dir/vectors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
