# Empty dependencies file for dcb_datagen.
# This may be replaced when dependencies are built.
