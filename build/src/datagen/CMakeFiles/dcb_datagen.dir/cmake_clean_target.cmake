file(REMOVE_RECURSE
  "libdcb_datagen.a"
)
