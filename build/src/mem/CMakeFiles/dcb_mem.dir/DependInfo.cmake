
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/dcb_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/dcb_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/config.cc" "src/mem/CMakeFiles/dcb_mem.dir/config.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/config.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/dcb_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/dcb_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/mem/CMakeFiles/dcb_mem.dir/prefetcher.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/prefetcher.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/dcb_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/dcb_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
