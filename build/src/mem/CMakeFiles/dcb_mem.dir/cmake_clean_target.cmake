file(REMOVE_RECURSE
  "libdcb_mem.a"
)
