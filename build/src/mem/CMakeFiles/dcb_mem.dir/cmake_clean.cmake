file(REMOVE_RECURSE
  "CMakeFiles/dcb_mem.dir/address_space.cc.o"
  "CMakeFiles/dcb_mem.dir/address_space.cc.o.d"
  "CMakeFiles/dcb_mem.dir/cache.cc.o"
  "CMakeFiles/dcb_mem.dir/cache.cc.o.d"
  "CMakeFiles/dcb_mem.dir/config.cc.o"
  "CMakeFiles/dcb_mem.dir/config.cc.o.d"
  "CMakeFiles/dcb_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dcb_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/dcb_mem.dir/page_table.cc.o"
  "CMakeFiles/dcb_mem.dir/page_table.cc.o.d"
  "CMakeFiles/dcb_mem.dir/prefetcher.cc.o"
  "CMakeFiles/dcb_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/dcb_mem.dir/tlb.cc.o"
  "CMakeFiles/dcb_mem.dir/tlb.cc.o.d"
  "libdcb_mem.a"
  "libdcb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
