# Empty compiler generated dependencies file for dcb_mem.
# This may be replaced when dependencies are built.
