
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch.cc" "src/cpu/CMakeFiles/dcb_cpu.dir/branch.cc.o" "gcc" "src/cpu/CMakeFiles/dcb_cpu.dir/branch.cc.o.d"
  "/root/repo/src/cpu/config.cc" "src/cpu/CMakeFiles/dcb_cpu.dir/config.cc.o" "gcc" "src/cpu/CMakeFiles/dcb_cpu.dir/config.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/dcb_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/dcb_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/perf.cc" "src/cpu/CMakeFiles/dcb_cpu.dir/perf.cc.o" "gcc" "src/cpu/CMakeFiles/dcb_cpu.dir/perf.cc.o.d"
  "/root/repo/src/cpu/pmu.cc" "src/cpu/CMakeFiles/dcb_cpu.dir/pmu.cc.o" "gcc" "src/cpu/CMakeFiles/dcb_cpu.dir/pmu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/dcb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
