# Empty compiler generated dependencies file for dcb_cpu.
# This may be replaced when dependencies are built.
