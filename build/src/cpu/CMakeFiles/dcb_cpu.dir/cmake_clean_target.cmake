file(REMOVE_RECURSE
  "libdcb_cpu.a"
)
