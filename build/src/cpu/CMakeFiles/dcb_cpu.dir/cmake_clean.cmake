file(REMOVE_RECURSE
  "CMakeFiles/dcb_cpu.dir/branch.cc.o"
  "CMakeFiles/dcb_cpu.dir/branch.cc.o.d"
  "CMakeFiles/dcb_cpu.dir/config.cc.o"
  "CMakeFiles/dcb_cpu.dir/config.cc.o.d"
  "CMakeFiles/dcb_cpu.dir/core.cc.o"
  "CMakeFiles/dcb_cpu.dir/core.cc.o.d"
  "CMakeFiles/dcb_cpu.dir/perf.cc.o"
  "CMakeFiles/dcb_cpu.dir/perf.cc.o.d"
  "CMakeFiles/dcb_cpu.dir/pmu.cc.o"
  "CMakeFiles/dcb_cpu.dir/pmu.cc.o.d"
  "libdcb_cpu.a"
  "libdcb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
