# Empty compiler generated dependencies file for analytics_graph_test.
# This may be replaced when dependencies are built.
