file(REMOVE_RECURSE
  "CMakeFiles/analytics_graph_test.dir/analytics_graph_test.cc.o"
  "CMakeFiles/analytics_graph_test.dir/analytics_graph_test.cc.o.d"
  "analytics_graph_test"
  "analytics_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
