file(REMOVE_RECURSE
  "CMakeFiles/analytics_ml_test.dir/analytics_ml_test.cc.o"
  "CMakeFiles/analytics_ml_test.dir/analytics_ml_test.cc.o.d"
  "analytics_ml_test"
  "analytics_ml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
