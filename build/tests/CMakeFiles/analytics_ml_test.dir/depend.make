# Empty dependencies file for analytics_ml_test.
# This may be replaced when dependencies are built.
