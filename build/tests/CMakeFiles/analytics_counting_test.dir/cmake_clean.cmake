file(REMOVE_RECURSE
  "CMakeFiles/analytics_counting_test.dir/analytics_counting_test.cc.o"
  "CMakeFiles/analytics_counting_test.dir/analytics_counting_test.cc.o.d"
  "analytics_counting_test"
  "analytics_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
