file(REMOVE_RECURSE
  "CMakeFiles/pmu_test.dir/pmu_test.cc.o"
  "CMakeFiles/pmu_test.dir/pmu_test.cc.o.d"
  "pmu_test"
  "pmu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
