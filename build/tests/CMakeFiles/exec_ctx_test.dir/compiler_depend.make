# Empty compiler generated dependencies file for exec_ctx_test.
# This may be replaced when dependencies are built.
