file(REMOVE_RECURSE
  "CMakeFiles/exec_ctx_test.dir/exec_ctx_test.cc.o"
  "CMakeFiles/exec_ctx_test.dir/exec_ctx_test.cc.o.d"
  "exec_ctx_test"
  "exec_ctx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_ctx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
