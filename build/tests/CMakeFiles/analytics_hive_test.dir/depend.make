# Empty dependencies file for analytics_hive_test.
# This may be replaced when dependencies are built.
