file(REMOVE_RECURSE
  "CMakeFiles/analytics_hive_test.dir/analytics_hive_test.cc.o"
  "CMakeFiles/analytics_hive_test.dir/analytics_hive_test.cc.o.d"
  "analytics_hive_test"
  "analytics_hive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_hive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
