file(REMOVE_RECURSE
  "CMakeFiles/paper_data_test.dir/paper_data_test.cc.o"
  "CMakeFiles/paper_data_test.dir/paper_data_test.cc.o.d"
  "paper_data_test"
  "paper_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
