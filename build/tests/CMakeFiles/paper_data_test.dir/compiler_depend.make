# Empty compiler generated dependencies file for paper_data_test.
# This may be replaced when dependencies are built.
