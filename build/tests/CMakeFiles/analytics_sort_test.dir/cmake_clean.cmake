file(REMOVE_RECURSE
  "CMakeFiles/analytics_sort_test.dir/analytics_sort_test.cc.o"
  "CMakeFiles/analytics_sort_test.dir/analytics_sort_test.cc.o.d"
  "analytics_sort_test"
  "analytics_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
