# Empty dependencies file for cluster_speedup.
# This may be replaced when dependencies are built.
