file(REMOVE_RECURSE
  "CMakeFiles/cluster_speedup.dir/cluster_speedup.cpp.o"
  "CMakeFiles/cluster_speedup.dir/cluster_speedup.cpp.o.d"
  "cluster_speedup"
  "cluster_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
