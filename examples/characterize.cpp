/**
 * @file
 * Full-suite characterization: run all 27 workloads (or a category) and
 * print the complete per-workload metric matrix plus the class averages
 * the paper states in its findings.
 *
 *   ./characterize [ops-per-workload] [category]
 *   category: all | data-analysis | service | spec-cpu | hpcc
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dcbench.h"
#include "util/string_util.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using dcb::util::format_double;

    dcb::core::HarnessConfig config = dcb::core::bench_config();
    if (argc > 1)
        config.run.op_budget = std::strtoull(argv[1], nullptr, 10);
    const std::string category = argc > 2 ? argv[2] : "all";

    std::vector<std::string> names;
    if (category == "all") {
        names = dcb::workloads::figure_order();
    } else if (category == "data-analysis") {
        names = dcb::workloads::names_in_category(
            dcb::workloads::Category::kDataAnalysis);
    } else if (category == "service") {
        names = dcb::workloads::names_in_category(
            dcb::workloads::Category::kService);
    } else if (category == "spec-cpu") {
        names = dcb::workloads::names_in_category(
            dcb::workloads::Category::kSpecCpu);
    } else if (category == "hpcc") {
        names = dcb::workloads::names_in_category(
            dcb::workloads::Category::kHpcc);
    } else {
        std::fprintf(stderr, "unknown category: %s\n", category.c_str());
        return 1;
    }

    dcb::util::Table table({"workload", "IPC", "kern%", "L1I", "iTLB",
                            "L2", "L3r%", "dTLB", "brm%", "fe%", "rat%",
                            "ld%", "st%", "rs%", "rob%"});
    table.set_title("DCBench-Repro characterization (" +
                    std::to_string(config.run.op_budget) +
                    " ops/workload)");
    std::vector<dcb::cpu::CounterReport> reports;
    for (const auto& name : names) {
        const auto result = dcb::core::run_workload(name, config);
        if (!result.status.ok) {
            std::fprintf(stderr, "warning: %s\n",
                         result.status.error.c_str());
            continue;
        }
        const auto& r = result.report;
        reports.push_back(r);
        table.add_row({r.workload, format_double(r.ipc, 2),
                       format_double(100 * r.kernel_instr_fraction, 1),
                       format_double(r.l1i_mpki, 1),
                       format_double(r.itlb_walk_pki, 3),
                       format_double(r.l2_mpki, 1),
                       format_double(100 * r.l3_service_ratio, 1),
                       format_double(r.dtlb_walk_pki, 3),
                       format_double(100 * r.branch_misprediction_ratio, 2),
                       format_double(100 * r.stalls.fetch, 0),
                       format_double(100 * r.stalls.rat, 0),
                       format_double(100 * r.stalls.load, 0),
                       format_double(100 * r.stalls.store, 0),
                       format_double(100 * r.stalls.rs, 0),
                       format_double(100 * r.stalls.rob, 0)});
    }
    table.print();

    if (category == "all") {
        const auto da = dcb::workloads::names_in_category(
            dcb::workloads::Category::kDataAnalysis);
        const auto svc = dcb::workloads::names_in_category(
            dcb::workloads::Category::kService);
        auto avg = [&](const std::vector<std::string>& ns,
                       dcb::core::MetricGetter g) {
            return dcb::core::class_average(reports, ns, g);
        };
        std::printf("\nclass averages (paper reference in parens):\n");
        std::printf("  DA IPC        %.2f (0.78)\n",
                    avg(da, [](const auto& r) { return r.ipc; }));
        std::printf("  DA L1I MPKI   %.1f (23)\n",
                    avg(da, [](const auto& r) { return r.l1i_mpki; }));
        std::printf("  DA L2 MPKI    %.1f (11)\n",
                    avg(da, [](const auto& r) { return r.l2_mpki; }));
        std::printf("  DA L3 ratio   %.1f%% (85.5%%)\n",
                    100 * avg(da, [](const auto& r) {
                        return r.l3_service_ratio;
                    }));
        std::printf("  SVC L2 MPKI   %.1f (60)\n",
                    avg(svc, [](const auto& r) { return r.l2_mpki; }));
        std::printf("  SVC L3 ratio  %.1f%% (94.9%%)\n",
                    100 * avg(svc, [](const auto& r) {
                        return r.l3_service_ratio;
                    }));
        std::printf("  DA OoO stalls %.1f%% (57%%)\n",
                    100 * avg(da, [](const auto& r) {
                        return r.stalls.out_of_order_part();
                    }));
        std::printf("  SVC in-order  %.1f%% (73%%)\n",
                    100 * avg(svc, [](const auto& r) {
                        return r.stalls.in_order_part();
                    }));
    }
    return 0;
}
