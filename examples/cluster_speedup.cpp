/**
 * @file
 * Cluster-scaling example: sweep slave counts for one (or every)
 * data-analysis workload through the cluster simulator -- the search
 * engine / e-commerce capacity-planning question the paper's Figure 2
 * answers ("how much faster does my nightly job get if I grow the
 * cluster?").
 *
 *   ./cluster_speedup [workload|all] [max-slaves]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dcbench.h"
#include "workloads/data_analysis.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

void
sweep(const dcb::mapreduce::JobSpec& spec, std::uint32_t max_slaves)
{
    dcb::mapreduce::ClusterSimulator sim;
    dcb::mapreduce::ClusterConfig cluster;
    dcb::util::Table table(
        {"slaves", "total (s)", "map (s)", "shuffle (s)", "reduce (s)",
         "speedup"});
    table.set_title("scaling " + spec.name);
    for (std::uint32_t s = 1; s <= max_slaves; s *= 2) {
        cluster.slaves = s;
        const auto t = sim.run(spec, cluster);
        table.add_row({std::to_string(s),
                       dcb::util::format_double(t.total_s, 1),
                       dcb::util::format_double(t.map_s, 1),
                       dcb::util::format_double(t.shuffle_s, 1),
                       dcb::util::format_double(t.reduce_s, 1),
                       dcb::util::format_double(
                           sim.speedup(spec, cluster, s), 2)});
    }
    table.print();
    std::printf("\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string which = argc > 1 ? argv[1] : "all";
    const std::uint32_t max_slaves =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;

    for (const auto& name : dcb::workloads::data_analysis_names()) {
        if (which != "all" && which != name)
            continue;
        const auto workload = dcb::workloads::make_workload(name);
        sweep(workload->info().cluster_spec, max_slaves);
    }
    return 0;
}
