/**
 * @file
 * Extending DCBench-Repro with your own workload: an inverted-index
 * builder (the core of a search-engine indexer, one of the paper's three
 * headline domains) written against the public Workload + ExecCtx API,
 * then characterized exactly like the built-in suite.
 */

#include <cstdio>
#include <vector>

#include "analytics/simdata.h"
#include "core/dcbench.h"
#include "datagen/text.h"
#include "os/syscalls.h"
#include "trace/exec_ctx.h"
#include "workloads/profiles.h"

namespace {

/**
 * Inverted index: documents stream in; for each word, a posting (doc id)
 * is appended to that word's chain. The access pattern is WordCount-like
 * hashing plus pointer-chased posting-list appends.
 */
class InvertedIndexWorkload final : public dcb::workloads::Workload
{
  public:
    InvertedIndexWorkload()
    {
        info_.name = "Inverted Index";
        info_.category = dcb::workloads::Category::kDataAnalysis;
        info_.source = "example: custom workload";
    }

    const dcb::workloads::WorkloadInfo& info() const override
    {
        return info_;
    }

    void
    run(dcb::cpu::Core& core,
        const dcb::workloads::RunConfig& config) override
    {
        using dcb::workloads::FootprintClass;
        dcb::trace::ExecCtx ctx(
            core,
            dcb::workloads::make_code_layout(
                FootprintClass::kJvmFramework,
                dcb::workloads::kUserCodeBase, config.seed),
            dcb::os::kernel_code_layout(dcb::workloads::kKernelCodeBase,
                                        config.seed ^ 0x5A5A),
            dcb::workloads::data_analysis_exec_profile(), config.seed);
        dcb::mem::AddressSpace space;

        constexpr std::uint32_t kVocab = 200'000;
        dcb::datagen::TextGenerator text(kVocab, 1.0, config.seed);
        // heads[word] -> index of the newest posting; postings chain back.
        dcb::analytics::SimVec<std::uint32_t> heads(space, kVocab, 0u,
                                                    "index_heads");
        dcb::analytics::SimVec<std::uint64_t> postings(
            space, 4u << 20, 0ull, "index_postings");
        std::uint32_t next_posting = 1;
        std::uint32_t doc_id = 0;

        while (ctx.counts().total() < config.op_budget) {
            const auto doc = text.next_document(100);
            ++doc_id;
            for (std::size_t i = 0; i < doc.words.size(); ++i) {
                const std::uint32_t w = doc.words[i];
                ctx.alu(3);  // tokenize + hash
                ctx.load(heads.addr(w));
                const std::uint32_t prev = heads[w];
                const std::uint32_t slot =
                    next_posting++ % (4u << 20);
                postings[slot] =
                    (static_cast<std::uint64_t>(prev) << 32) | doc_id;
                ctx.store(postings.addr(slot));
                heads[w] = slot;
                ctx.store(heads.addr(w));
                ctx.branch(0xCAFE, i + 1 < doc.words.size());
            }
        }
    }

  private:
    dcb::workloads::WorkloadInfo info_;
};

}  // namespace

int
main()
{
    InvertedIndexWorkload workload;
    const auto config = dcb::core::bench_config();
    const auto r = dcb::core::run_workload(workload, config);
    std::printf("custom workload: %s\n", r.workload.c_str());
    std::printf("IPC %.2f | L1I MPKI %.1f | L2 MPKI %.1f | "
                "L3 ratio %.1f%% | br miss %.2f%%\n",
                r.ipc, r.l1i_mpki, r.l2_mpki, 100.0 * r.l3_service_ratio,
                100.0 * r.branch_misprediction_ratio);
    std::printf("stalls: fetch %.0f%% rat %.0f%% rs %.0f%% rob %.0f%%\n",
                100.0 * r.stalls.fetch, 100.0 * r.stalls.rat,
                100.0 * r.stalls.rs, 100.0 * r.stalls.rob);
    std::printf("\nLike the built-in data-analysis workloads, a custom\n"
                "indexer stalls mostly in the out-of-order core, not the\n"
                "front end -- compare examples/characterize output.\n");
    return 0;
}
