/**
 * @file
 * Quickstart: run one data-analysis workload on the simulated Westmere
 * machine and print the counter-derived metrics the paper reports.
 *
 *   ./quickstart [workload-name] [op-budget]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dcbench.h"

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "WordCount";
    dcb::core::HarnessConfig config = dcb::core::bench_config();
    if (argc > 2)
        config.run.op_budget = std::strtoull(argv[2], nullptr, 10);

    auto workload = dcb::workloads::make_workload(name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload: %s\navailable:\n",
                     name.c_str());
        for (const auto& n : dcb::workloads::figure_order())
            std::fprintf(stderr, "  %s\n", n.c_str());
        return 1;
    }

    std::printf("DCBench-Repro quickstart: %s (%s)\n", name.c_str(),
                workload->info().source.c_str());
    const dcb::cpu::CounterReport r =
        dcb::core::run_workload(*workload, config);

    std::printf("instructions retired : %.0f\n", r.instructions);
    std::printf("cycles               : %.0f\n", r.cycles);
    std::printf("IPC                  : %.3f\n", r.ipc);
    std::printf("kernel instructions  : %.1f%%\n",
                100.0 * r.kernel_instr_fraction);
    std::printf("L1I MPKI             : %.2f\n", r.l1i_mpki);
    std::printf("ITLB walks PKI       : %.4f\n", r.itlb_walk_pki);
    std::printf("L2 MPKI              : %.2f\n", r.l2_mpki);
    std::printf("L3 service ratio     : %.1f%%\n",
                100.0 * r.l3_service_ratio);
    std::printf("DTLB walks PKI       : %.4f\n", r.dtlb_walk_pki);
    std::printf("branch mispredict    : %.2f%%\n",
                100.0 * r.branch_misprediction_ratio);
    std::printf("stalls: fetch %.0f%% rat %.0f%% load %.0f%% store %.0f%% "
                "rs %.0f%% rob %.0f%%\n",
                100.0 * r.stalls.fetch, 100.0 * r.stalls.rat,
                100.0 * r.stalls.load, 100.0 * r.stalls.store,
                100.0 * r.stalls.rs, 100.0 * r.stalls.rob);
    return 0;
}
