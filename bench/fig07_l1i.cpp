/**
 * @file
 * Figure 7: L1 instruction-cache misses per thousand instructions.
 *
 * Paper shape: data-analysis workloads ~23 MPKI on average -- far above
 * SPEC CPU and HPCC, below most services; Media Streaming ~3x the DA
 * average; Naive Bayes the DA exception with almost none.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 7: L1 instruction-cache misses per thousand instructions", reports, "L1I MPKI",
        [](const cpu::CounterReport& r) { return r.l1i_mpki; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return m.l1i_mpki;
        }),
        1, "fig07_l1i.csv", cpu::ReportMetric::kL1iMpki);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.l1i_mpki; });
    const double hpcc = bench::category_average(
        reports, workloads::Category::kHpcc,
        [](const auto& r) { return r.l1i_mpki; });
    double bayes = 0.0;
    double media = 0.0;
    for (const auto& r : reports) {
        if (r.workload == "Naive Bayes")
            bayes = r.l1i_mpki;
        if (r.workload == "Media Streaming")
            media = r.l1i_mpki;
    }
    std::printf("DA average %.1f MPKI (paper ~23)\n\n", da);
    core::shape_check("DA far above HPCC", da > 5 * hpcc);
    core::shape_check("Naive Bayes is the DA exception", bayes < da / 3);
    core::shape_check("Media Streaming is the extreme", media > 1.7 * da);
    return 0;
}
