/**
 * @file
 * Observability demo: exercises every span source in one run and
 * writes one Chrome trace-event / Perfetto file that contains all of
 * them -- per-workload harness runs and interval telemetry (exact
 * runs), sampling-engine segments (a sampled run), the cluster
 * scheduler's task attempts, retries, speculation and fault epochs (a
 * faulty MapReduce job), and the sharded multi-job engine with the
 * labeled metrics registry armed (epoch barriers, fair-share grants,
 * per-barrier snapshots). This is the file the CI observability step
 * validates and the README's Perfetto quick-start opens.
 *
 * Usage: ./obs_demo [--ops N] [--obs-interval N] [--obs-out PREFIX]
 *                   [--trace-out FILE] [--obs-metrics-out FILE]
 *                   [--obs-phase] [--manifest FILE]
 *
 * Defaults (unlike the figure benches, observability is ON here):
 * trace to obs_demo.trace.json, manifest to obs_demo.manifest.json,
 * metrics to obs_demo.metrics.prom (+ .dcx snapshot extents),
 * telemetry every op_budget/20 ops into obs/, phase detection on.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

#include "fault/fault.h"
#include "mapreduce/fairshare.h"
#include "mapreduce/scheduler.h"

int
main(int argc, char** argv)
{
    using namespace dcb;

    core::HarnessConfig config = bench::config_from_args(argc, argv);
    bench::ObsSinks& sinks = bench::obs_sinks();
    if (sinks.trace == nullptr) {
        sinks.trace_path = "obs_demo.trace.json";
        sinks.trace = std::make_unique<obs::TraceWriter>();
        sinks.trace->name_process(obs::TraceWriter::kHostPid,
                                  "harness (host time)");
    }
    if (sinks.metrics == nullptr) {
        sinks.metrics_path = "obs_demo.metrics.prom";
        sinks.metrics = std::make_unique<obs::MetricsRegistry>();
        sinks.metrics->set_snapshot_spill(sinks.metrics_path + ".dcx");
    }
    if (sinks.manifest_path.empty())
        sinks.manifest_path = "obs_demo.manifest.json";
    if (!sinks.flush_registered) {
        std::atexit(&bench::flush_obs_sinks);
        sinks.flush_registered = true;
    }
    config.trace = sinks.trace.get();
    if (!config.telemetry.enabled())
        config.telemetry.interval_ops = config.run.op_budget / 20;
    if (config.telemetry.out_path.empty())
        config.telemetry.out_path = "obs/";
    config.detect_phases = true;  // telemetry is always on here
    if (sinks.phase_path.empty())
        sinks.phase_path = "obs_demo.phases.json";
    config.sampling = sample::SamplePlan{};  // exact first: telemetry on
    // Defaults were applied after config_from_args filled the manifest;
    // re-stamp the effective values (set() overwrites in place).
    bench::manifest().set("obs_interval_ops",
                          config.telemetry.interval_ops);
    bench::manifest().set("obs_out", config.telemetry.out_path);
    bench::manifest().set("trace_out", sinks.trace_path);
    bench::manifest().set("obs_metrics_out", sinks.metrics_path);
    bench::manifest().set("phase_detection", true);
    bench::manifest().set("obs_phase_out", sinks.phase_path);

    // --- Exact runs: workload spans + interval telemetry ----------------
    const std::vector<std::string> all = workloads::figure_order();
    const std::vector<std::string> names(all.begin(),
                                         all.begin() +
                                             std::min<std::size_t>(
                                                 3, all.size()));
    std::printf("\nexact runs (telemetry every %llu ops):\n",
                static_cast<unsigned long long>(
                    config.telemetry.interval_ops));
    core::SuiteResult suite = core::run_suite(names, config);
    bool telemetry_ok = suite.all_ok();
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        const core::RunResult& run = suite.runs[i];
        if (!run.status.ok || run.telemetry == nullptr) {
            telemetry_ok = false;
            continue;
        }
        std::printf("  %-20s %zu intervals, ipc %.3f, %.3f s\n",
                    names[i].c_str(), run.telemetry->rows().size(),
                    run.report.ipc, run.wall_seconds);
        telemetry_ok = telemetry_ok && !run.telemetry->empty();
    }

    // --- Sampled run: sampling-engine segment spans ---------------------
    core::HarnessConfig sampled = config;
    sampled.telemetry = obs::TelemetryConfig{};  // sampled: telemetry off
    sampled.sampling.ratio = 0.05;
    const core::RunResult sampled_run =
        core::run_workload(names.front(), sampled, names.size());
    std::printf("sampled run: %-13s ipc %.3f, %.3f s\n",
                names.front().c_str(), sampled_run.report.ipc,
                sampled_run.wall_seconds);

    // --- Faulty cluster job: task spans + fault epochs ------------------
    const mapreduce::ClusterScheduler scheduler;
    mapreduce::ClusterConfig cluster;
    cluster.slaves = 8;
    fault::FaultPlan plan;
    plan.task_crash_prob = 0.02;
    plan.node_crash_time_s = 60.0;
    plan.crash_node = 3;
    cluster.fault = plan;
    fault::FaultInjector injector(plan);
    const auto workload = workloads::make_workload(names.front());
    const mapreduce::JobRun job =
        scheduler.run(workload->info().cluster_spec, cluster, &injector,
                      sinks.trace.get(), names.front());
    std::printf("cluster job: %s in %.1f sim-s, %u task failures, "
                "%u node(s) lost\n",
                job.completed ? "completed" : "FAILED",
                job.timings.total_s, job.task_failures, job.nodes_lost);

    // --- Sharded multi-job run: metrics registry + cluster-clock trace --
    std::vector<mapreduce::JobSubmission> fleet;
    for (std::uint32_t j = 0; j < 3; ++j) {
        mapreduce::JobSubmission sub;
        sub.spec.name = "demo-job-" + std::to_string(j);
        sub.spec.input_gb = 24.0 + 8.0 * j;
        sub.spec.total_instructions_g = 30.0 * sub.spec.input_gb;
        sub.submit_time_s = 5.0 * j;
        sub.weight = 1.0 + j;
        fleet.push_back(sub);
    }
    mapreduce::ClusterConfig mj_cluster;
    mj_cluster.slaves = 32;
    mj_cluster.racks = 4;
    mapreduce::MultiJobOptions mj_opt;
    mj_opt.threads = 2;
    mj_opt.trace = sinks.trace.get();
    mj_opt.metrics = bench::metrics_registry();
    const mapreduce::MultiJobScheduler fair_scheduler;
    const mapreduce::MultiJobResult mj =
        fair_scheduler.run(fleet, mj_cluster, mj_opt);
    std::printf("multi-job run: %s, %zu jobs, makespan %.1f sim-s, "
                "%llu epochs\n",
                mj.ok && mj.all_completed() ? "completed" : "FAILED",
                mj.jobs.size(), mj.makespan_s,
                static_cast<unsigned long long>(mj.epochs));
    suite.shard_barrier_wait_seconds.clear();
    suite.shard_steals.clear();
    for (const mapreduce::ShardStats& st : mj.shards) {
        suite.shard_barrier_wait_seconds.push_back(
            st.barrier_wait_seconds);
        suite.shard_steals.push_back(st.steals);
    }
    bench::stamp_phase_results(suite);

    bench::manifest().set("demo_workloads",
                          static_cast<std::uint64_t>(names.size()));
    bench::manifest().set("demo_job_completed", job.completed);
    bench::manifest().set("demo_multijob_completed",
                          mj.ok && mj.all_completed());

    // --- Shape checks: the trace really holds every span source ---------
    const obs::TraceWriter& trace = *sinks.trace;
    std::printf("\ntrace: %zu events -- workload %zu, sampling %zu, "
                "task %zu, phase %zu, scheduler %zu, fault %zu\n\n",
                trace.size(), trace.count_category("workload"),
                trace.count_category("sampling"),
                trace.count_category("task"),
                trace.count_category("phase"),
                trace.count_category("scheduler"),
                trace.count_category("fault"));
    bool ok = true;
    ok &= core::shape_check("every exact run produced telemetry",
                            telemetry_ok);
    ok &= core::shape_check("per-workload run spans recorded",
                            trace.count_category("workload") ==
                                names.size() + 1);
    ok &= core::shape_check("sampling segment spans recorded",
                            trace.count_category("sampling") > 0);
    ok &= core::shape_check("scheduler task spans recorded",
                            trace.count_category("task") > 0);
    ok &= core::shape_check("map/shuffle/reduce phase spans recorded",
                            trace.count_category("phase") >= 3);
    ok &= core::shape_check("fault epochs recorded",
                            trace.count_category("fault") > 0);
    ok &= core::shape_check("the faulty job still completed",
                            job.completed);
    ok &= core::shape_check("epoch barrier spans recorded",
                            trace.count_category("epoch") > 0);
    ok &= core::shape_check("fair-share grant instants recorded",
                            trace.count_category("sched") > 0);
    ok &= core::shape_check("the multi-job fleet completed",
                            mj.ok && mj.all_completed());
    const obs::MetricsRegistry& metrics = *sinks.metrics;
    ok &= core::shape_check("metrics registry holds series",
                            metrics.series_count() > 0);
    ok &= core::shape_check("per-barrier snapshots recorded",
                            metrics.snapshot_count() > 0);
    bool phases_found = false;
    for (const core::RunResult& run : suite.runs)
        phases_found = phases_found || run.phases != nullptr;
    ok &= core::shape_check("phase detection produced boundaries",
                            phases_found);
    return ok ? 0 : 1;
}
