/**
 * @file
 * Observability demo: exercises every span source in one run and
 * writes one Chrome trace-event / Perfetto file that contains all of
 * them -- per-workload harness runs and interval telemetry (exact
 * runs), sampling-engine segments (a sampled run), and the cluster
 * scheduler's task attempts, retries, speculation and fault epochs (a
 * faulty MapReduce job). This is the file the CI observability step
 * validates and the README's Perfetto quick-start opens.
 *
 * Usage: ./obs_demo [--ops N] [--obs-interval N] [--obs-out PREFIX]
 *                   [--trace-out FILE] [--manifest FILE]
 *
 * Defaults (unlike the figure benches, observability is ON here):
 * trace to obs_demo.trace.json, manifest to obs_demo.manifest.json,
 * telemetry every op_budget/20 ops into obs/.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

#include "fault/fault.h"
#include "mapreduce/scheduler.h"

int
main(int argc, char** argv)
{
    using namespace dcb;

    core::HarnessConfig config = bench::config_from_args(argc, argv);
    bench::ObsSinks& sinks = bench::obs_sinks();
    if (sinks.trace == nullptr) {
        sinks.trace_path = "obs_demo.trace.json";
        sinks.trace = std::make_unique<obs::TraceWriter>();
        sinks.trace->name_process(obs::TraceWriter::kHostPid,
                                  "harness (host time)");
    }
    if (sinks.manifest_path.empty())
        sinks.manifest_path = "obs_demo.manifest.json";
    if (!sinks.flush_registered) {
        std::atexit(&bench::flush_obs_sinks);
        sinks.flush_registered = true;
    }
    config.trace = sinks.trace.get();
    if (!config.telemetry.enabled())
        config.telemetry.interval_ops = config.run.op_budget / 20;
    if (config.telemetry.out_path.empty())
        config.telemetry.out_path = "obs/";
    config.sampling = sample::SamplePlan{};  // exact first: telemetry on
    // Defaults were applied after config_from_args filled the manifest;
    // re-stamp the effective values (set() overwrites in place).
    bench::manifest().set("obs_interval_ops",
                          config.telemetry.interval_ops);
    bench::manifest().set("obs_out", config.telemetry.out_path);
    bench::manifest().set("trace_out", sinks.trace_path);

    // --- Exact runs: workload spans + interval telemetry ----------------
    const std::vector<std::string> all = workloads::figure_order();
    const std::vector<std::string> names(all.begin(),
                                         all.begin() +
                                             std::min<std::size_t>(
                                                 3, all.size()));
    std::printf("\nexact runs (telemetry every %llu ops):\n",
                static_cast<unsigned long long>(
                    config.telemetry.interval_ops));
    const core::SuiteResult suite = core::run_suite(names, config);
    bool telemetry_ok = suite.all_ok();
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        const core::RunResult& run = suite.runs[i];
        if (!run.status.ok || run.telemetry == nullptr) {
            telemetry_ok = false;
            continue;
        }
        std::printf("  %-20s %zu intervals, ipc %.3f, %.3f s\n",
                    names[i].c_str(), run.telemetry->rows().size(),
                    run.report.ipc, run.wall_seconds);
        telemetry_ok = telemetry_ok && !run.telemetry->empty();
    }

    // --- Sampled run: sampling-engine segment spans ---------------------
    core::HarnessConfig sampled = config;
    sampled.telemetry = obs::TelemetryConfig{};  // sampled: telemetry off
    sampled.sampling.ratio = 0.05;
    const core::RunResult sampled_run =
        core::run_workload(names.front(), sampled, names.size());
    std::printf("sampled run: %-13s ipc %.3f, %.3f s\n",
                names.front().c_str(), sampled_run.report.ipc,
                sampled_run.wall_seconds);

    // --- Faulty cluster job: task spans + fault epochs ------------------
    const mapreduce::ClusterScheduler scheduler;
    mapreduce::ClusterConfig cluster;
    cluster.slaves = 8;
    fault::FaultPlan plan;
    plan.task_crash_prob = 0.02;
    plan.node_crash_time_s = 60.0;
    plan.crash_node = 3;
    cluster.fault = plan;
    fault::FaultInjector injector(plan);
    const auto workload = workloads::make_workload(names.front());
    const mapreduce::JobRun job =
        scheduler.run(workload->info().cluster_spec, cluster, &injector,
                      sinks.trace.get(), names.front());
    std::printf("cluster job: %s in %.1f sim-s, %u task failures, "
                "%u node(s) lost\n",
                job.completed ? "completed" : "FAILED",
                job.timings.total_s, job.task_failures, job.nodes_lost);

    bench::manifest().set("demo_workloads",
                          static_cast<std::uint64_t>(names.size()));
    bench::manifest().set("demo_job_completed", job.completed);

    // --- Shape checks: the trace really holds every span source ---------
    const obs::TraceWriter& trace = *sinks.trace;
    std::printf("\ntrace: %zu events -- workload %zu, sampling %zu, "
                "task %zu, phase %zu, scheduler %zu, fault %zu\n\n",
                trace.size(), trace.count_category("workload"),
                trace.count_category("sampling"),
                trace.count_category("task"),
                trace.count_category("phase"),
                trace.count_category("scheduler"),
                trace.count_category("fault"));
    bool ok = true;
    ok &= core::shape_check("every exact run produced telemetry",
                            telemetry_ok);
    ok &= core::shape_check("per-workload run spans recorded",
                            trace.count_category("workload") ==
                                names.size() + 1);
    ok &= core::shape_check("sampling segment spans recorded",
                            trace.count_category("sampling") > 0);
    ok &= core::shape_check("scheduler task spans recorded",
                            trace.count_category("task") > 0);
    ok &= core::shape_check("map/shuffle/reduce phase spans recorded",
                            trace.count_category("phase") >= 3);
    ok &= core::shape_check("fault epochs recorded",
                            trace.count_category("fault") > 0);
    ok &= core::shape_check("the faulty job still completed",
                            job.completed);
    return ok ? 0 : 1;
}
