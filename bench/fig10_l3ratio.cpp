/**
 * @file
 * Figure 10: ratio of L2 misses satisfied by the L3 (Equation 1).
 *
 * Paper shape: the 12 MB LLC captures most data-analysis (85.5% avg)
 * and service (94.9% avg) L2 misses; HPCC's streaming and random
 * kernels blow through it.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 10: ratio of L2 misses satisfied by the L3 (Equation 1)", reports, "L3 ratio %",
        [](const cpu::CounterReport& r) { return 100.0 * r.l3_service_ratio; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return 100.0 * m.l3_ratio;
        }),
        1, "fig10_l3ratio.csv", cpu::ReportMetric::kL3ServiceRatio, 100.0);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.l3_service_ratio; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.l3_service_ratio; });
    double stream = 1.0;
    double ra = 1.0;
    for (const auto& r : reports) {
        if (r.workload == "HPCC-STREAM")
            stream = r.l3_service_ratio;
        if (r.workload == "HPCC-RandomAccess")
            ra = r.l3_service_ratio;
    }
    std::printf("DA average %.1f%% (paper 85.5%%), services %.1f%% "
                "(paper 94.9%%)\n\n", 100 * da, 100 * svc);
    core::shape_check("LLC effective for DA (>70%)", da > 0.70);
    core::shape_check("LLC effective for services (>70%)", svc > 0.70);
    core::shape_check("STREAM defeats the LLC", stream < 0.4);
    core::shape_check("RandomAccess defeats the LLC", ra < 0.7);
    return 0;
}
