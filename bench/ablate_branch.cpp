/**
 * @file
 * Ablation: predictor complexity (Section IV-E's "a simpler branch
 * predictor may be preferred so as to save power and die area").
 *
 * Reruns representative workloads with gshare (the default), bimodal and
 * static-taken predictors. For the data-analysis workloads the simple
 * predictors give up little; for the branchy service models they give
 * up much more.
 */

#include <cstdio>

#include "bench_common.h"
#include "cpu/branch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

/** Run one workload with a chosen predictor; returns the report. */
dcb::cpu::CounterReport
run_with_predictor(const std::string& name, int predictor,
                   std::uint64_t budget)
{
    using namespace dcb;
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = budget;
    config.run.warmup_ops = budget / 4;
    cpu::Core core(config.core_config, config.memory_config);
    if (predictor == 1) {
        core.set_direction_predictor(
            std::make_unique<cpu::BimodalPredictor>(14));
    } else if (predictor == 2) {
        core.set_direction_predictor(
            std::make_unique<cpu::StaticTakenPredictor>());
    } else if (predictor == 3) {
        core.set_direction_predictor(
            std::make_unique<cpu::LocalHistoryPredictor>(10, 12));
    }
    core.set_counter_reset_at(config.run.warmup_ops);
    auto workload = workloads::make_workload(name);
    workload->run(core, config.run);
    return cpu::make_report(name, core);
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'500'000;

    util::Table table({"workload", "gshare miss%", "local miss%",
                       "bimodal miss%", "static miss%",
                       "IPC loss bimodal", "IPC loss static"});
    table.set_title("ablation: branch predictor complexity");

    double da_loss = 0.0;
    double svc_loss = 0.0;
    for (const std::string name : {"K-means", "WordCount", "PageRank",
                                   "Web Serving", "SPECWeb"}) {
        const auto g = run_with_predictor(name, 0, budget);
        const auto l = run_with_predictor(name, 3, budget);
        const auto b = run_with_predictor(name, 1, budget);
        const auto s = run_with_predictor(name, 2, budget);
        const double loss_b = (g.ipc - b.ipc) / g.ipc;
        const double loss_s = (g.ipc - s.ipc) / g.ipc;
        table.add_row(
            {name,
             util::format_double(100 * g.branch_misprediction_ratio, 2),
             util::format_double(100 * l.branch_misprediction_ratio, 2),
             util::format_double(100 * b.branch_misprediction_ratio, 2),
             util::format_double(100 * s.branch_misprediction_ratio, 2),
             util::format_double(100 * loss_b, 1) + "%",
             util::format_double(100 * loss_s, 1) + "%"});
        if (name == "Web Serving" || name == "SPECWeb")
            svc_loss += loss_b / 2;
        else
            da_loss += loss_b / 3;
    }
    table.print();
    std::printf("\nbimodal IPC loss: data analysis %.1f%%, services "
                "%.1f%%\n\n",
                100 * da_loss, 100 * svc_loss);
    core::shape_check(
        "data-analysis workloads tolerate a simpler predictor better "
        "than the branchy services",
        da_loss < svc_loss);
    return 0;
}
