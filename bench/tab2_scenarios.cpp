/**
 * @file
 * Table II: application scenarios of the data-analysis workloads across
 * the three headline domains (search engine, social network, electronic
 * commerce) -- the evidence that most chosen workloads are
 * *intersections* of the domains.
 */

#include <cstdio>
#include <set>

#include "core/domain_catalog.h"
#include "util/table.h"
#include "workloads/data_analysis.h"

int
main()
{
    using namespace dcb;
    util::Table table({"Workload", "Domain", "Scenario"});
    table.set_title("Table II: scenarios of data analysis");
    for (const auto& s : core::scenario_catalog())
        table.add_row({s.workload, s.domain, s.scenario});
    table.print();

    std::printf("\nworkload domain coverage:\n");
    for (const auto& name : workloads::data_analysis_names()) {
        std::set<std::string> domains;
        for (const auto& s : core::scenarios_for(name))
            domains.insert(s.domain);
        std::printf("  %-14s %zu domain(s)\n", name.c_str(),
                    domains.size());
    }
    return 0;
}
