/**
 * @file
 * Table III: the simulated machine configuration -- one node of the
 * paper's 5-node cluster (dual Intel Xeon E5645), as instantiated by the
 * harness defaults.
 */

#include <cstdio>

#include "cpu/config.h"
#include "mem/config.h"

int
main()
{
    using namespace dcb;
    const auto memory = mem::westmere_memory_config();
    const auto core = cpu::westmere_core_config();

    std::printf("Table III: details of hardware configurations\n");
    std::printf("---------------------------------------------\n");
    std::printf("CPU Type: Intel Xeon E5645 (simulated)\n");
    std::printf("# Cores: 6 cores @ %.1fG\n", core.frequency_ghz);
    std::printf("# threads: 12 threads\n");
    std::printf("# Sockets: 2\n");
    std::printf("%s", memory.to_string().c_str());
    std::printf("Memory: 32 GB, DDR3 (flat model, %u-cycle load-to-use)\n",
                memory.memory_latency);
    std::printf("\nPipeline model:\n%s", core.to_string().c_str());
    return 0;
}
