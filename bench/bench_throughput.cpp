/**
 * @file
 * Simulator throughput tracker: measures how many micro-ops per second
 * the substrate itself retires for every workload, plus full-suite wall
 * time serial vs parallel, and writes the numbers to
 * BENCH_throughput.json so throughput regressions show up in review.
 *
 * Usage: ./bench_throughput [ops-per-workload] [--jobs N]
 *                           [--check-speedup X]
 *                           [--check-obs-overhead F]
 *   N = 0 picks one worker per hardware thread; default compares
 *   --jobs 1 against that auto value.
 *
 * The parallel suite must be bit-identical to the serial one; this
 * bench verifies that on every run and fails loudly if it is not.
 * --check-speedup X additionally fails the run when the parallel suite
 * is not at least X times faster than serial -- skipped (with a note)
 * when the host exposes a single hardware thread, where no parallel
 * speedup is possible.
 *
 * --check-obs-overhead F reruns the serial suite with interval
 * telemetry and event tracing armed, verifies the counter reports stay
 * bit-identical (observability must not perturb the simulation), and
 * fails when the instrumented wall time exceeds (1 + F) times plain --
 * the CI guard for observability cost.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/atomic_file.h"
#include "util/thread_pool.h"

namespace {

using namespace dcb;
using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool
reports_equal(const cpu::CounterReport& a, const cpu::CounterReport& b)
{
    return a.workload == b.workload && a.instructions == b.instructions &&
           a.cycles == b.cycles && a.ipc == b.ipc &&
           a.kernel_instr_fraction == b.kernel_instr_fraction &&
           a.stalls.fetch == b.stalls.fetch &&
           a.stalls.rat == b.stalls.rat &&
           a.stalls.load == b.stalls.load &&
           a.stalls.store == b.stalls.store &&
           a.stalls.rs == b.stalls.rs && a.stalls.rob == b.stalls.rob &&
           a.l1i_mpki == b.l1i_mpki && a.itlb_walk_pki == b.itlb_walk_pki &&
           a.l2_mpki == b.l2_mpki &&
           a.l3_service_ratio == b.l3_service_ratio &&
           a.dtlb_walk_pki == b.dtlb_walk_pki &&
           a.branch_misprediction_ratio == b.branch_misprediction_ratio;
}

}  // namespace

int
main(int argc, char** argv)
{
    // Split off --check-speedup before the shared parser sees it (it
    // treats unknown tokens as the legacy positional budget).
    double check_speedup = -1.0;
    double check_obs_overhead = -1.0;
    std::vector<char*> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check-speedup") == 0 && i + 1 < argc)
            check_speedup = std::strtod(argv[++i], nullptr);
        else if (std::strncmp(argv[i], "--check-speedup=", 16) == 0)
            check_speedup = std::strtod(argv[i] + 16, nullptr);
        else if (std::strcmp(argv[i], "--check-obs-overhead") == 0 &&
                 i + 1 < argc)
            check_obs_overhead = std::strtod(argv[++i], nullptr);
        else if (std::strncmp(argv[i], "--check-obs-overhead=", 21) == 0)
            check_obs_overhead = std::strtod(argv[i] + 21, nullptr);
        else
            pass.push_back(argv[i]);
    }
    core::HarnessConfig config = bench::config_from_args(
        static_cast<int>(pass.size()), pass.data());
    // Count every retired op toward throughput: no warmup discard here.
    config.run.warmup_ops = 0;
    const unsigned hardware_threads = std::thread::hardware_concurrency();
    // Oversubscribing a small host only adds scheduler noise to a
    // throughput bench: the auto value never exceeds the suite size or
    // what the hardware actually offers.
    unsigned parallel_jobs =
        util::effective_thread_count(config.jobs == 1 ? 0 : config.jobs);
    const unsigned suite_size =
        static_cast<unsigned>(workloads::figure_order().size());
    if (parallel_jobs > suite_size)
        parallel_jobs = suite_size;
    const std::vector<std::string> names = workloads::figure_order();

    std::printf("simulator throughput, %llu ops per workload, "
                "%zu workloads, parallel at %u jobs\n\n",
                static_cast<unsigned long long>(config.run.op_budget),
                names.size(), parallel_jobs);

    // --- Per-workload ops/sec (serial, one timed run each) --------------
    struct WorkloadRate
    {
        std::string name;
        double ops = 0.0;
        double seconds = 0.0;
    };
    std::vector<WorkloadRate> rates;
    rates.reserve(names.size());
    std::printf("%-24s %14s %10s %14s\n", "workload", "retired ops",
                "seconds", "ops/sec");
    core::HarnessConfig serial = config;
    serial.jobs = 1;
    double total_ops = 0.0;
    double total_seconds = 0.0;
    for (const std::string& name : names) {
        const auto start = Clock::now();
        const core::RunResult run = core::run_workload(name, serial);
        const double elapsed = seconds_since(start);
        if (!run.status.ok) {
            std::fprintf(stderr, "warning: %s skipped: %s\n", name.c_str(),
                         run.status.error.c_str());
            continue;
        }
        rates.push_back({name, run.report.instructions, elapsed});
        total_ops += run.report.instructions;
        total_seconds += elapsed;
        std::printf("%-24s %14.0f %10.3f %14.0f\n", name.c_str(),
                    run.report.instructions, elapsed,
                    run.report.instructions / elapsed);
    }
    std::printf("%-24s %14.0f %10.3f %14.0f\n\n", "TOTAL", total_ops,
                total_seconds, total_ops / total_seconds);

    // --- Suite wall time: serial vs parallel ----------------------------
    const auto serial_start = Clock::now();
    const core::SuiteResult serial_suite = core::run_suite(names, serial);
    const double serial_seconds = seconds_since(serial_start);

    core::HarnessConfig parallel = config;
    parallel.jobs = parallel_jobs;
    const auto parallel_start = Clock::now();
    const core::SuiteResult parallel_suite =
        core::run_suite(names, parallel);
    const double parallel_seconds = seconds_since(parallel_start);

    bool identical = serial_suite.runs.size() == parallel_suite.runs.size();
    for (std::size_t i = 0; identical && i < serial_suite.runs.size(); ++i) {
        identical = serial_suite.runs[i].status.ok ==
                        parallel_suite.runs[i].status.ok &&
                    reports_equal(serial_suite.runs[i].report,
                                  parallel_suite.runs[i].report);
    }
    bench::stamp_pool_stats(parallel_suite);
    const double speedup = parallel_seconds > 0.0
                               ? serial_seconds / parallel_seconds
                               : 0.0;
    std::printf("suite wall time: %.3f s at --jobs 1, %.3f s at --jobs %u "
                "(speedup %.2fx)\n",
                serial_seconds, parallel_seconds, parallel_jobs, speedup);
    std::printf("parallel results bit-identical to serial: %s\n",
                identical ? "yes" : "NO -- BUG");

    // --- Observability overhead: telemetry + tracing armed --------------
    // Same serial suite with interval counters and span tracing on.
    // Observation must not perturb the simulation (reports stay
    // bit-identical) and must stay cheap (CI guards the overhead).
    const std::uint64_t obs_interval =
        std::max<std::uint64_t>(config.run.op_budget / 100, 1000);
    core::HarnessConfig obs_config = serial;
    obs_config.telemetry.interval_ops = obs_interval;
    obs_config.telemetry.out_path.clear();  // in-memory recorders only
    obs::TraceWriter obs_trace;
    obs_config.trace = &obs_trace;
    const auto obs_start = Clock::now();
    const core::SuiteResult obs_suite = core::run_suite(names, obs_config);
    const double obs_seconds = seconds_since(obs_start);
    bool obs_identical = obs_suite.runs.size() == serial_suite.runs.size();
    for (std::size_t i = 0; obs_identical && i < serial_suite.runs.size();
         ++i) {
        obs_identical = serial_suite.runs[i].status.ok ==
                            obs_suite.runs[i].status.ok &&
                        reports_equal(serial_suite.runs[i].report,
                                      obs_suite.runs[i].report);
    }
    const double obs_overhead =
        serial_seconds > 0.0 ? obs_seconds / serial_seconds - 1.0 : 0.0;
    // Recorder memory accounting: total telemetry rows collected and the
    // largest in-memory buffer any recorder held (with spilling armed
    // this is bounded by one extent regardless of run length).
    std::uint64_t obs_rows = 0;
    std::uint64_t obs_peak_recorder_bytes = 0;
    for (const core::RunResult& run : obs_suite.runs) {
        if (run.telemetry == nullptr)
            continue;
        obs_rows += run.telemetry->total_rows();
        obs_peak_recorder_bytes = std::max(
            obs_peak_recorder_bytes, run.telemetry->peak_buffered_bytes());
    }
    std::printf("observability on (interval %llu ops + tracing): %.3f s, "
                "overhead %+.1f%%, reports bit-identical: %s\n",
                static_cast<unsigned long long>(obs_interval), obs_seconds,
                100.0 * obs_overhead, obs_identical ? "yes" : "NO -- BUG");
    std::printf("telemetry rows %llu, peak recorder buffer %llu bytes, "
                "peak process rss %llu bytes\n",
                static_cast<unsigned long long>(obs_rows),
                static_cast<unsigned long long>(obs_peak_recorder_bytes),
                static_cast<unsigned long long>(bench::peak_rss_bytes()));

    // --- JSON dump ------------------------------------------------------
    const char* json_path = "BENCH_throughput.json";
    std::string json_temp;
    if (std::FILE* f = util::open_file_atomic(json_path, &json_temp)) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"op_budget\": %llu,\n",
                     static_cast<unsigned long long>(config.run.op_budget));
        std::fprintf(f, "  \"parallel_jobs\": %u,\n", parallel_jobs);
        std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                     hardware_threads);
        std::fprintf(f, "  \"workloads\": [\n");
        for (std::size_t i = 0; i < rates.size(); ++i) {
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"ops\": %.0f, "
                         "\"seconds\": %.6f, \"ops_per_sec\": %.0f}%s\n",
                         rates[i].name.c_str(), rates[i].ops,
                         rates[i].seconds, rates[i].ops / rates[i].seconds,
                         i + 1 < rates.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"total_ops_per_sec\": %.0f,\n",
                     total_ops / total_seconds);
        std::fprintf(f, "  \"suite_seconds_jobs1\": %.6f,\n",
                     serial_seconds);
        std::fprintf(f, "  \"suite_seconds_jobsN\": %.6f,\n",
                     parallel_seconds);
        std::fprintf(f, "  \"suite_speedup\": %.4f,\n", speedup);
        std::fprintf(f, "  \"parallel_bit_identical\": %s,\n",
                     identical ? "true" : "false");
        // Per-worker load split of the parallel suite, mirroring the
        // per-shard utilization the cluster bench reports.
        std::fprintf(f, "  \"workers\": [\n");
        for (std::size_t i = 0;
             i < parallel_suite.worker_tasks.size(); ++i) {
            std::fprintf(
                f,
                "    {\"worker\": %zu, \"tasks\": %llu, "
                "\"busy_seconds\": %.6f}%s\n",
                i,
                static_cast<unsigned long long>(
                    parallel_suite.worker_tasks[i]),
                parallel_suite.worker_busy_seconds[i],
                i + 1 < parallel_suite.worker_tasks.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"obs_seconds_jobs1\": %.6f,\n", obs_seconds);
        std::fprintf(f, "  \"obs_overhead\": %.4f,\n", obs_overhead);
        std::fprintf(f, "  \"obs_trace_events\": %zu,\n",
                     obs_trace.size());
        std::fprintf(f, "  \"obs_bit_identical\": %s,\n",
                     obs_identical ? "true" : "false");
        std::fprintf(f, "  \"obs_telemetry_rows\": %llu,\n",
                     static_cast<unsigned long long>(obs_rows));
        std::fprintf(f, "  \"obs_peak_recorder_bytes\": %llu,\n",
                     static_cast<unsigned long long>(
                         obs_peak_recorder_bytes));
        std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(
                         bench::peak_rss_bytes()));
        std::fprintf(f, "  \"manifest\": %s\n",
                     bench::manifest().json_fragment(2).c_str());
        std::fprintf(f, "}\n");
        if (!util::commit_file_atomic(f, json_temp, json_path)) {
            std::fprintf(stderr, "error: cannot write %s\n", json_path);
            return 1;
        }
        std::printf("wrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "error: cannot write %s\n", json_path);
        return 1;
    }
    if (check_speedup > 0.0) {
        if (hardware_threads <= 1) {
            std::printf("speedup check skipped: single hardware thread\n");
        } else if (speedup < check_speedup) {
            std::fprintf(stderr,
                         "FAIL: suite speedup %.2fx below required %.2fx\n",
                         speedup, check_speedup);
            return 1;
        }
    }
    if (check_obs_overhead > 0.0 && obs_overhead > check_obs_overhead) {
        std::fprintf(stderr,
                     "FAIL: observability overhead %.1f%% above allowed "
                     "%.1f%%\n",
                     100.0 * obs_overhead, 100.0 * check_obs_overhead);
        return 1;
    }
    return identical && obs_identical ? 0 : 1;
}
