/**
 * @file
 * google-benchmark microbenches for the simulation substrate itself:
 * how fast the cache/TLB/branch/core models consume events. These bound
 * the wall-clock cost of the figure benches and catch performance
 * regressions in the simulator.
 */

#include <memory>

#include <benchmark/benchmark.h>

#include "cpu/branch.h"
#include "cpu/core.h"
#include "cpu/perf.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "trace/code_layout.h"
#include "trace/exec_ctx.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace dcb;

void
BM_CacheAccessHit(benchmark::State& state)
{
    mem::SetAssocCache cache({32 * 1024, 8, 64}, mem::Replacement::kLru);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr & 0x3FFF));
        addr += 64;
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissy(benchmark::State& state)
{
    mem::SetAssocCache cache({256 * 1024, 8, 64}, mem::Replacement::kLru);
    util::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.next_below(64 << 20)));
}
BENCHMARK(BM_CacheAccessMissy);

void
BM_HierarchyDataAccess(benchmark::State& state)
{
    mem::CacheHierarchy hierarchy(mem::westmere_memory_config());
    util::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hierarchy.data_access(rng.next_below(8 << 20), false));
    }
}
BENCHMARK(BM_HierarchyDataAccess);

void
BM_ZipfSample(benchmark::State& state)
{
    util::Rng rng(3);
    util::ZipfSampler zipf(1'000'000, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void
BM_CodeLayoutFetch(benchmark::State& state)
{
    trace::CodeLayout layout({{"hot", 64, 320, 0.6, 0.6, 30.0},
                              {"warm", 3000, 448, 0.4, 0.75, 20.0}},
                             0x400000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(layout.next_fetch());
}
BENCHMARK(BM_CodeLayoutFetch);

void
BM_CoreConsumeAlu(benchmark::State& state)
{
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    trace::MicroOp op;
    op.cls = trace::OpClass::kAlu;
    op.fetch_addr = 0x1000;
    for (auto _ : state) {
        core.consume(op);
        op.fetch_addr = 0x1000 + ((op.fetch_addr + 4) & 0xFFF);
    }
}
BENCHMARK(BM_CoreConsumeAlu);

void
BM_CoreConsumeLoadMix(benchmark::State& state)
{
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    util::Rng rng(5);
    trace::MicroOp op;
    for (auto _ : state) {
        op.cls = rng.next_bool(0.3) ? trace::OpClass::kLoad
                                    : trace::OpClass::kAlu;
        op.addr = rng.next_below(16 << 20);
        op.fetch_addr = 0x1000 + rng.next_below(1 << 20);
        core.consume(op);
    }
}
BENCHMARK(BM_CoreConsumeLoadMix);

// --- Op-delivery path (single vs batched consume) -----------------------

void
BM_CoreConsumeAluBatched(benchmark::State& state)
{
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    constexpr std::size_t kBatch = 64;
    trace::MicroOp batch[kBatch];
    std::uint64_t fetch = 0x1000;
    for (std::size_t i = 0; i < kBatch; ++i) {
        batch[i].cls = trace::OpClass::kAlu;
        batch[i].fetch_addr = 0x1000 + (fetch & 0xFFF);
        fetch += 4;
    }
    for (auto _ : state)
        core.consume_batch(batch, kBatch);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            kBatch);
}
BENCHMARK(BM_CoreConsumeAluBatched);

void
BM_ExecCtxEmitAlu(benchmark::State& state)
{
    // The full per-op producer path: emit -> fetch-address stream ->
    // batch buffer -> batched virtual delivery into the core.
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    trace::CodeLayout user({{"hot", 64, 320, 0.6, 0.6, 30.0}}, 0x400000, 4);
    trace::CodeLayout kernel = trace::tight_kernel_layout(
        0xffffffff81000000ull, 9);
    trace::ExecCtx ctx(core, std::move(user), std::move(kernel),
                       trace::ExecProfile{}, 1234);
    for (auto _ : state)
        ctx.alu(1);
}
BENCHMARK(BM_ExecCtxEmitAlu);

void
BM_BranchResolveConditional(benchmark::State& state)
{
    const cpu::CoreConfig cfg = cpu::westmere_core_config();
    cpu::BranchUnit unit(
        std::make_unique<cpu::GsharePredictor>(cfg.gshare_history_bits),
        cfg.btb_entries, cfg.btb_ways);
    util::Rng rng(7);
    for (auto _ : state) {
        const std::uint64_t key = rng.next_below(4096);
        benchmark::DoNotOptimize(
            unit.resolve_conditional(key, (key & 3) != 0));
    }
}
BENCHMARK(BM_BranchResolveConditional);

void
BM_CoreConsumeWithPmu(benchmark::State& state)
{
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    core.pmu().configure_events(cpu::default_event_set(), 50'000);
    trace::MicroOp op;
    op.cls = trace::OpClass::kAlu;
    op.fetch_addr = 0x1000;
    for (auto _ : state)
        core.consume(op);
}
BENCHMARK(BM_CoreConsumeWithPmu);

}  // namespace

BENCHMARK_MAIN();
