/**
 * @file
 * Ablation: out-of-order window sizing. Section IV-B finds data-analysis
 * workloads stalled on RS/ROB capacity; this sweep shows their IPC
 * responds to window size while the front-end-bound service models
 * barely move -- the architectural lever the finding points at.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

dcb::cpu::CounterReport
run_with_window(const std::string& name, std::uint32_t rob,
                std::uint32_t rs, std::uint64_t budget)
{
    using namespace dcb;
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = budget;
    config.run.warmup_ops = budget / 4;
    config.core_config.rob_entries = rob;
    config.core_config.rs_entries = rs;
    return core::run_workload(name, config).report;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'500'000;

    util::Table table({"ROB/RS", "PageRank IPC", "K-means IPC",
                       "Web Serving IPC"});
    table.set_title("ablation: out-of-order window size sweep");

    double bayes_small = 0.0;
    double bayes_big = 0.0;
    double web_small = 0.0;
    double web_big = 0.0;
    const std::uint32_t robs[] = {32, 64, 128, 256};
    const std::uint32_t rss[] = {9, 18, 36, 72};
    for (int i = 0; i < 4; ++i) {
        const auto bayes = run_with_window("PageRank", robs[i], rss[i],
                                           budget);
        const auto kmeans = run_with_window("K-means", robs[i], rss[i],
                                            budget);
        const auto web = run_with_window("Web Serving", robs[i], rss[i],
                                         budget);
        table.add_row({std::to_string(robs[i]) + "/" +
                           std::to_string(rss[i]),
                       util::format_double(bayes.ipc, 2),
                       util::format_double(kmeans.ipc, 2),
                       util::format_double(web.ipc, 2)});
        if (i == 0) {
            bayes_small = bayes.ipc;
            web_small = web.ipc;
        }
        if (i == 3) {
            bayes_big = bayes.ipc;
            web_big = web.ipc;
        }
    }
    table.print();
    std::printf("\n");
    const double bayes_gain = bayes_big / bayes_small - 1.0;
    const double web_gain = web_big / web_small - 1.0;
    std::printf("window 32->256: PageRank +%.0f%%, Web Serving "
                "+%.0f%%\n\n",
                100 * bayes_gain, 100 * web_gain);
    core::shape_check("OoO-bound analytics benefit more from a bigger "
                      "window than front-end-bound services",
                      bayes_gain > web_gain);
    return 0;
}
