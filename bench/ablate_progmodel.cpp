/**
 * @file
 * Ablation: programming-model effects (the paper's Section V notes "the
 * significant effects of different programming models, e.g., MPI vs
 * MapReduce, on the application behaviors" as beyond its scope; DCBench
 * ships both implementations).
 *
 * Runs K-means two ways on the same data and machine:
 *
 *   Hadoop style -- the built-in workload: every Lloyd iteration re-reads
 *   its input from HDFS and writes centers back (Mahout's driver);
 *   MPI style    -- data stays resident; each iteration ends with a
 *   center allreduce (small messages through the socket stack).
 *
 * The contrast shows where the data-analysis class's kernel time and
 * framework overhead come from.
 */

#include <cstdio>

#include "analytics/kmeans.h"
#include "bench_common.h"
#include "datagen/vectors.h"
#include "mem/address_space.h"
#include "os/syscalls.h"
#include "trace/exec_ctx.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workloads/profiles.h"

namespace {

/** MPI-style K-means: resident data, allreduce per iteration. */
dcb::cpu::CounterReport
run_mpi_kmeans(std::uint64_t budget)
{
    using namespace dcb;
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    core.set_counter_reset_at(budget / 4);
    trace::ExecCtx ctx(
        core,
        workloads::make_code_layout(workloads::FootprintClass::kTightKernel,
                                    workloads::kUserCodeBase, 42),
        os::kernel_code_layout(workloads::kKernelCodeBase, 43),
        workloads::hpcc_exec_profile(), 42);
    mem::AddressSpace space;
    os::Disk disk;
    os::Network net;
    os::OsModel os(ctx, space, disk, net);

    constexpr std::uint32_t kDims = 16;
    constexpr std::uint32_t kCenters = 16;
    constexpr std::size_t kPoints = 24'000;
    datagen::VectorGenerator gen(kDims, kCenters, 1.5, 44);
    std::vector<double> points;
    std::vector<double> p;
    for (std::size_t i = 0; i < kPoints; ++i) {
        gen.next_point(p);
        points.insert(points.end(), p.begin(), p.end());
    }
    analytics::Kmeans kmeans(ctx, space, points, kPoints, kDims, kCenters);
    const mem::Region msg = space.alloc(kCenters * kDims * 8, "allreduce");

    while (ctx.counts().total() < budget) {
        kmeans.begin_pass();
        for (std::size_t q = 0; q < kPoints; q += 2048) {
            kmeans.assign_block(q, 2048);
            if (ctx.counts().total() >= budget)
                break;
        }
        kmeans.finish_pass();
        // Allreduce of the center sums: one small exchange per peer.
        for (int peer = 0; peer < 3; ++peer) {
            os.sys_send(msg.base, kCenters * kDims * 8);
            os.sys_recv(msg.base, kCenters * kDims * 8);
        }
    }
    return cpu::make_report("K-means (MPI style)", core);
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = budget;
    config.run.warmup_ops = budget / 4;
    const auto hadoop = core::run_workload("K-means", config).report;
    const auto mpi = run_mpi_kmeans(budget);

    util::Table table({"implementation", "IPC", "kernel%", "L1I MPKI",
                       "L2 MPKI", "fetch-stall share"});
    table.set_title(
        "ablation: programming model (same algorithm, same data)");
    for (const auto& r : {hadoop, mpi}) {
        table.add_row({r.workload, util::format_double(r.ipc, 2),
                       util::format_double(100 * r.kernel_instr_fraction,
                                           1),
                       util::format_double(r.l1i_mpki, 1),
                       util::format_double(r.l2_mpki, 1),
                       util::format_double(100 * r.stalls.fetch, 0) +
                           "%"});
    }
    table.print();
    std::printf("\n");
    core::shape_check("MapReduce/JVM stack costs front-end misses",
                      hadoop.l1i_mpki > 4 * mpi.l1i_mpki);
    core::shape_check("MPI version spends less time in the kernel",
                      mpi.kernel_instr_fraction <
                          hadoop.kernel_instr_fraction + 0.02);
    core::shape_check("MPI version is faster on the same core",
                      mpi.ipc > hadoop.ipc);
    return 0;
}
