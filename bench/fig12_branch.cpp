/**
 * @file
 * Figure 12: branch misprediction ratio.
 *
 * Paper shape: data-analysis workloads mispredict less than the
 * services and SPEC CPU (simple loop-dominated patterns); the HPCC
 * micro-kernels are near zero.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 12: branch misprediction ratio", reports, "mispredict %",
        [](const cpu::CounterReport& r) { return 100.0 * r.branch_misprediction_ratio; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return 100.0 * m.br_mispred;
        }),
        2, "fig12_branch.csv", cpu::ReportMetric::kBranchMispredictionRatio,
        100.0);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.branch_misprediction_ratio; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.branch_misprediction_ratio; });
    const double hpcc = bench::category_average(
        reports, workloads::Category::kHpcc,
        [](const auto& r) { return r.branch_misprediction_ratio; });
    double specint = 0.0;
    for (const auto& r : reports)
        if (r.workload == "SPECINT")
            specint = r.branch_misprediction_ratio;
    std::printf("DA average %.2f%%, services %.2f%%, HPCC %.2f%%\n\n",
                100 * da, 100 * svc, 100 * hpcc);
    core::shape_check("DA below the services", da < svc);
    core::shape_check("DA below SPECINT", da < specint);
    core::shape_check("HPCC lowest", hpcc < da);
    return 0;
}
