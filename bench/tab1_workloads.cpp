/**
 * @file
 * Table I: the eleven representative data-analysis workloads -- input
 * sizes, retired-instruction totals and sources.
 *
 * The measured column extrapolates each workload's observed
 * instructions-per-input-byte (from a scaled harness run) to the paper's
 * full input size, validating that the narrated kernels have the right
 * compute intensity; by construction of the PaperRatioIo input model the
 * two columns should agree closely.
 */

#include "bench_common.h"

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    using util::format_double;

    const auto config = bench::config_from_args(argc, argv);

    util::Table table({"No.", "Workload", "Input (GB)",
                       "#Retired instr (B, paper)",
                       "extrapolated (B, measured)", "Source"});
    table.set_title("Table I: representative data analysis workloads");
    util::CsvWriter csv({"workload", "input_gb", "paper_instr_g",
                         "measured_instr_g"});

    int row = 0;
    for (const auto& ref : core::paper_table1()) {
        const auto workload = workloads::make_workload(ref.name);
        // Measure instructions per simulated input byte at small scale,
        // then extrapolate to the paper's full input size.
        cpu::Core core(config.core_config, config.memory_config);
        workload->run(core, config.run);
        const double bytes = static_cast<double>(
            workload->last_input_bytes());
        const double ipb = bytes > 0.0
            ? static_cast<double>(core.instructions()) / bytes
            : 0.0;
        const double measured_g =
            ipb * ref.input_gb * 1024.0 * 1024.0 * 1024.0 / 1e9;
        table.add_row({std::to_string(++row), ref.name,
                       format_double(ref.input_gb, 0),
                       format_double(ref.instructions_g, 0),
                       format_double(measured_g, 0), ref.source});
        csv.add_row({ref.name, format_double(ref.input_gb, 0),
                     format_double(ref.instructions_g, 0),
                     format_double(measured_g, 0)});
    }
    table.print();
    csv.write_file("tab1_workloads.csv");
    std::printf("\nInstruction totals range from ~1.5 trillion (Grep) to"
                "\n~68 trillion (Naive Bayes): none of these jobs is "
                "trivial.\n");
    return 0;
}
