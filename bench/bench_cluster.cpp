/**
 * @file
 * Cluster-scale benchmark of the sharded multi-job engine: a 512-node /
 * 32-rack cluster serving 16 concurrent fair-share jobs, run through
 * the serial reference (threads=1) and the sharded parallel engine,
 * verified bit-identical, timed, and written to BENCH_cluster.json
 * (atomic write) with per-shard utilization.
 *
 * The same scenario is then re-run under a correlated-fault plan (node
 * crash, rack power loss, partition + heal, master failover, hangs,
 * crashes, cascades) and held to the same serial/sharded/replay
 * bit-identity -- the chaos machinery at 512-node scale.
 *
 * A third fault-free run executes with the observability plane fully
 * armed (labeled metrics registry + cluster trace) and is byte-diffed
 * against the unarmed dump: observation must never perturb the
 * simulation. --check-obs-overhead gates the armed/unarmed wall-clock
 * ratio (serialization excluded -- files are written after timing).
 *
 * Usage: ./bench_cluster [--nodes N] [--racks N] [--jobs N]
 *                        [--threads N] [--check-speedup X]
 *                        [--dump-serial FILE] [--dump-sharded FILE]
 *                        [--dump-observed FILE]
 *                        [--obs-metrics-out FILE] [--trace-out FILE]
 *                        [--check-obs-overhead X] [--json FILE]
 *
 *   --threads 0 (default) uses one worker per hardware thread, capped
 *   at the rack count. --check-speedup X fails the run when the sharded
 *   wall-clock speedup is below X -- skipped with a note on hosts with
 *   fewer than 4 hardware threads, where the parallel region is
 *   starved (same policy as bench_throughput). --dump-* write the
 *   canonical MultiJobResult dumps so CI can byte-diff serial vs
 *   sharded vs observed across invocations. --obs-metrics-out writes
 *   the armed run's Prometheus text to FILE and its per-barrier
 *   snapshot rows to FILE.dcx. --check-obs-overhead X fails the run
 *   when (armed / unarmed - 1) exceeds X, measured over interleaved
 *   repeat pairs with the best (minimum) time taken per side.
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "mapreduce/fairshare.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/trace_writer.h"
#include "util/atomic_file.h"

namespace {

using namespace dcb;
using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The benchmark fleet: job j is a pure function of (j, job_count). */
std::vector<mapreduce::JobSubmission>
make_fleet(std::uint32_t job_count)
{
    std::vector<mapreduce::JobSubmission> subs;
    subs.reserve(job_count);
    for (std::uint32_t j = 0; j < job_count; ++j) {
        mapreduce::JobSubmission sub;
        sub.spec.name = "fleet";
        sub.spec.input_gb = 192.0 + 48.0 * (j % 5);
        sub.spec.total_instructions_g = 30.0 * sub.spec.input_gb;
        sub.spec.map_output_ratio = (j % 3 == 0) ? 0.8 : 0.2;
        if (j % 4 == 3)
            sub.spec.iterations = 2;  // iterative (Mahout-style) jobs
        sub.submit_time_s = 4.0 * j;  // staggered arrivals
        sub.weight = 1.0 + (j % 3);
        subs.push_back(sub);
    }
    return subs;
}

/** Peak RSS in bytes (ru_maxrss is KiB on Linux). */
std::uint64_t
peak_rss_bytes()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

bool
write_text(const std::string& path, const std::string& text)
{
    std::string temp;
    std::FILE* f = util::open_file_atomic(path.c_str(), &temp);
    if (f == nullptr)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    return util::commit_file_atomic(f, temp, path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    std::uint32_t nodes = 512;
    std::uint32_t racks = 32;
    std::uint32_t jobs = 16;
    unsigned threads = 0;
    double check_speedup = -1.0;
    double check_obs_overhead = -1.0;
    std::string dump_serial_path;
    std::string dump_sharded_path;
    std::string dump_observed_path;
    std::string metrics_path;
    std::string trace_path;
    std::string json_path = "BENCH_cluster.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            const std::size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
                arg[len] == '=')
                return arg.c_str() + len + 1;
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (const char* v = value("--nodes"))
            nodes = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (const char* v = value("--racks"))
            racks = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (const char* v = value("--jobs"))
            jobs = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (const char* v = value("--threads"))
            threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (const char* v = value("--check-speedup"))
            check_speedup = std::strtod(v, nullptr);
        else if (const char* v = value("--check-obs-overhead"))
            check_obs_overhead = std::strtod(v, nullptr);
        else if (const char* v = value("--dump-serial"))
            dump_serial_path = v;
        else if (const char* v = value("--dump-sharded"))
            dump_sharded_path = v;
        else if (const char* v = value("--dump-observed"))
            dump_observed_path = v;
        else if (const char* v = value("--obs-metrics-out"))
            metrics_path = v;
        else if (const char* v = value("--trace-out"))
            trace_path = v;
        else if (const char* v = value("--json"))
            json_path = v;
    }
    const unsigned hardware_threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = std::max(1u, hardware_threads);
    threads = std::min(threads, racks);

    mapreduce::ClusterConfig cluster;
    cluster.slaves = nodes;
    cluster.racks = racks;
    const std::vector<mapreduce::JobSubmission> fleet = make_fleet(jobs);
    mapreduce::FairShareConfig fair;
    fair.attempt_jitter_sigma = 0.25;  // realistic duration spread
    const mapreduce::MultiJobScheduler scheduler(fair);

    std::printf("cluster bench: %u nodes / %u racks / %u jobs, "
                "sharded at %u threads (%u hardware)\n\n",
                nodes, racks, jobs, threads, hardware_threads);

    // --- Fault-free: the speedup measurement -------------------------
    mapreduce::MultiJobOptions serial_opt;
    serial_opt.threads = 1;
    const auto serial_start = Clock::now();
    const mapreduce::MultiJobResult serial =
        scheduler.run(fleet, cluster, serial_opt);
    const double serial_seconds = seconds_since(serial_start);
    if (!serial.ok) {
        std::fprintf(stderr, "error: %s\n", serial.error.c_str());
        return 1;
    }

    mapreduce::MultiJobOptions sharded_opt;
    sharded_opt.threads = threads;
    const auto sharded_start = Clock::now();
    const mapreduce::MultiJobResult sharded =
        scheduler.run(fleet, cluster, sharded_opt);
    const double sharded_seconds = seconds_since(sharded_start);

    const std::string serial_dump = serial.dump();
    const bool identical = serial_dump == sharded.dump();
    const double speedup =
        sharded_seconds > 0.0 ? serial_seconds / sharded_seconds : 0.0;
    std::uint64_t completed = 0;
    for (const mapreduce::JobOutcome& job : serial.jobs)
        completed += job.completed ? 1 : 0;
    std::printf("fault-free: makespan %.1f sim-s, %" PRIu64 "/%u jobs "
                "completed, %" PRIu64 " events over %" PRIu64 " epochs\n",
                serial.makespan_s, completed, jobs, serial.events,
                serial.epochs);
    std::printf("wall clock: %.3f s serial, %.3f s at %u threads "
                "(speedup %.2fx)\n",
                serial_seconds, sharded_seconds, threads, speedup);
    std::printf("sharded results bit-identical to serial: %s\n",
                identical ? "yes" : "NO -- BUG");
    const obs::LatencyStats& att = serial.attempt_durations;
    std::printf("attempt durations (n=%" PRIu64 "): p50 %.1f s, "
                "p95 %.1f s, p99 %.1f s, p999 %.1f s\n\n",
                att.count, att.p50, att.p95, att.p99, att.p999);

    // --- Observability armed: must not perturb the simulation --------
    obs::MetricsRegistry registry;
    if (!metrics_path.empty())
        registry.set_snapshot_spill(metrics_path + ".dcx");
    obs::TraceWriter cluster_trace;
    mapreduce::MultiJobOptions observed_opt;
    observed_opt.threads = threads;
    observed_opt.metrics = &registry;
    observed_opt.trace = &cluster_trace;
    const auto observed_start = Clock::now();
    const mapreduce::MultiJobResult observed =
        scheduler.run(fleet, cluster, observed_opt);
    double armed_seconds = seconds_since(observed_start);
    const std::string observed_dump = observed.dump();
    const bool obs_identical = observed_dump == serial_dump;
    double unarmed_seconds = sharded_seconds;
    double obs_overhead =
        unarmed_seconds > 0.0 ? armed_seconds / unarmed_seconds - 1.0
                              : 0.0;
    if (check_obs_overhead >= 0.0) {
        // The gate re-times back-to-back (unarmed, armed) pairs with
        // fresh in-memory sinks (artifacts discarded) and takes the
        // *minimum per-pair ratio*: the two runs of a pair are
        // temporally adjacent, so slow host drift and noisy-neighbor
        // episodes inflate both sides of the ratio together and cancel,
        // where a min-per-side over a long window would compare a calm
        // unarmed sample against armed samples from a noisy stretch.
        for (int rep = 0; rep < 4; ++rep) {
            const auto unarmed_rep_start = Clock::now();
            (void)scheduler.run(fleet, cluster, sharded_opt);
            const double u = seconds_since(unarmed_rep_start);
            unarmed_seconds = std::min(unarmed_seconds, u);
            obs::MetricsRegistry rep_registry;
            obs::TraceWriter rep_trace;
            mapreduce::MultiJobOptions rep_opt = observed_opt;
            rep_opt.metrics = &rep_registry;
            rep_opt.trace = &rep_trace;
            const auto armed_rep_start = Clock::now();
            (void)scheduler.run(fleet, cluster, rep_opt);
            const double a = seconds_since(armed_rep_start);
            armed_seconds = std::min(armed_seconds, a);
            if (u > 0.0)
                obs_overhead = std::min(obs_overhead, a / u - 1.0);
        }
    }
    std::printf("observability armed: %.3f s wall (%+.1f%% vs %.3f s "
                "unarmed); dump bit-identical: %s\n",
                armed_seconds, 100.0 * obs_overhead, unarmed_seconds,
                obs_identical ? "yes" : "NO -- BUG");
    std::printf("metrics: %zu series, %" PRIu64 " snapshots (one per "
                "barrier), %zu trace events\n\n",
                registry.series_count(), registry.snapshot_count(),
                cluster_trace.size());

    // --- Correlated faults at scale: bit-identity only ---------------
    fault::FaultPlan plan;
    plan.seed = 0xC1A05C41EULL;
    plan.task_crash_prob = 0.01;
    plan.task_hang_prob = 0.004;
    plan.slow_node_fraction = 0.08;
    plan.slow_multiplier = 1.7;
    plan.node_crash_time_s = 60.0;
    plan.crash_node = nodes / 3;
    plan.rack_crash_time_s = 120.0;
    plan.crash_rack = racks / 2;
    plan.partition_time_s = 80.0;
    plan.partition_duration_s = 45.0;
    plan.partition_rack = racks / 4;
    plan.master_crash_time_s = 100.0;
    plan.cascade_prob = 0.4;

    const auto run_chaos = [&](unsigned t) {
        fault::FaultInjector injector(plan);
        mapreduce::MultiJobOptions options;
        options.threads = t;
        options.injector = &injector;
        return scheduler.run(fleet, cluster, options);
    };
    const auto chaos_serial_start = Clock::now();
    const mapreduce::MultiJobResult chaos_serial = run_chaos(1);
    const double chaos_serial_seconds =
        seconds_since(chaos_serial_start);
    const auto chaos_sharded_start = Clock::now();
    const mapreduce::MultiJobResult chaos_sharded = run_chaos(threads);
    const double chaos_sharded_seconds =
        seconds_since(chaos_sharded_start);
    const bool chaos_identical =
        chaos_serial.dump() == chaos_sharded.dump();
    const mapreduce::ClusterOutcome& co = chaos_serial.cluster;
    std::printf("chaos: makespan %.1f sim-s; nodes lost %u, racks lost "
                "%u, partitions %u (heals %u), failovers %u, cascades "
                "%u, blacklisted %u\n",
                chaos_serial.makespan_s, co.nodes_lost, co.racks_lost,
                co.partitions, co.partition_heals, co.master_failovers,
                co.cascades_triggered, co.nodes_blacklisted);
    std::printf("chaos wall clock: %.3f s serial, %.3f s at %u threads; "
                "bit-identical: %s\n\n",
                chaos_serial_seconds, chaos_sharded_seconds, threads,
                chaos_identical ? "yes" : "NO -- BUG");

    // --- Artifacts ---------------------------------------------------
    if (!dump_serial_path.empty() &&
        !write_text(dump_serial_path, serial_dump)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     dump_serial_path.c_str());
        return 1;
    }
    if (!dump_sharded_path.empty() &&
        !write_text(dump_sharded_path, sharded.dump())) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     dump_sharded_path.c_str());
        return 1;
    }
    if (!dump_observed_path.empty() &&
        !write_text(dump_observed_path, observed_dump)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     dump_observed_path.c_str());
        return 1;
    }
    if (!metrics_path.empty()) {
        if (!registry.finalize_snapshots()) {
            std::fprintf(stderr, "error: cannot write %s.dcx\n",
                         metrics_path.c_str());
            return 1;
        }
        if (!registry.write_prometheus(metrics_path)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("wrote %s and %s.dcx\n", metrics_path.c_str(),
                    metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        if (!cluster_trace.write(trace_path)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                    cluster_trace.size());
    }

    if (json_path != "none") {
        obs::RunManifest manifest;
        manifest.add_host_info();
        manifest.set("bench", "bench_cluster");
        manifest.set("nodes", std::uint64_t{nodes});
        manifest.set("racks", std::uint64_t{racks});
        manifest.set("jobs", std::uint64_t{jobs});
        manifest.set("threads", std::uint64_t{threads});
        manifest.set("hardware_concurrency",
                     std::uint64_t{hardware_threads});
        manifest.set("obs_bit_identical", obs_identical);
        manifest.set("metrics_series",
                     std::uint64_t{registry.series_count()});
        manifest.set("metrics_snapshots", registry.snapshot_count());
        if (!metrics_path.empty())
            manifest.set("obs_metrics_out", metrics_path);

        std::string out = "{\n";
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "  \"nodes\": %u,\n  \"racks\": %u,\n"
                      "  \"jobs\": %u,\n  \"threads\": %u,\n"
                      "  \"hardware_concurrency\": %u,\n",
                      nodes, racks, jobs, threads, hardware_threads);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  \"makespan_s\": %.6f,\n  \"events\": %" PRIu64
                      ",\n  \"epochs\": %" PRIu64 ",\n",
                      serial.makespan_s, serial.events, serial.epochs);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  \"serial_seconds\": %.6f,\n"
                      "  \"sharded_seconds\": %.6f,\n"
                      "  \"speedup\": %.4f,\n"
                      "  \"bit_identical\": %s,\n",
                      serial_seconds, sharded_seconds, speedup,
                      identical ? "true" : "false");
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  \"chaos_serial_seconds\": %.6f,\n"
                      "  \"chaos_sharded_seconds\": %.6f,\n"
                      "  \"chaos_bit_identical\": %s,\n"
                      "  \"chaos_nodes_lost\": %u,\n"
                      "  \"chaos_master_failovers\": %u,\n",
                      chaos_serial_seconds, chaos_sharded_seconds,
                      chaos_identical ? "true" : "false", co.nodes_lost,
                      co.master_failovers);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  \"obs_armed_seconds\": %.6f,\n"
                      "  \"obs_unarmed_seconds\": %.6f,\n"
                      "  \"obs_overhead\": %.4f,\n"
                      "  \"obs_bit_identical\": %s,\n"
                      "  \"metrics_series\": %zu,\n"
                      "  \"metrics_snapshots\": %" PRIu64
                      ",\n  \"trace_events\": %zu,\n",
                      armed_seconds, unarmed_seconds, obs_overhead,
                      obs_identical ? "true" : "false",
                      registry.series_count(),
                      registry.snapshot_count(), cluster_trace.size());
        out += buf;
        out += "  \"shards\": [\n";
        for (std::size_t s = 0; s < sharded.shards.size(); ++s) {
            const mapreduce::ShardStats& st = sharded.shards[s];
            const mapreduce::ShardUtil& ut = sharded.shard_util[s];
            std::snprintf(
                buf, sizeof buf,
                "    {\"shard\": %zu, \"events\": %" PRIu64
                ", \"heartbeats\": %" PRIu64
                ", \"slot_busy_s\": %.3f, \"uplink_wait_s\": %.3f, "
                "\"busy_seconds\": %.6f, \"barrier_wait_seconds\": "
                "%.6f, \"steals\": %" PRIu64 "}%s\n",
                s, st.events_processed, ut.progress_heartbeats,
                ut.slot_busy_s, ut.uplink_wait_s, st.busy_seconds,
                st.barrier_wait_seconds, st.steals,
                s + 1 < sharded.shards.size() ? "," : "");
            out += buf;
        }
        out += "  ],\n";
        out += "  \"attempt_durations\": " +
               obs::latency_stats_json(att) + ",\n";
        std::snprintf(buf, sizeof buf,
                      "  \"attempt_sketch_tuples\": %zu,\n"
                      "  \"peak_rss_bytes\": %llu,\n",
                      serial.attempt_sketch.tuples().size(),
                      static_cast<unsigned long long>(peak_rss_bytes()));
        out += buf;
        out += "  \"manifest\": " + manifest.json_fragment(2) + "\n";
        out += "}\n";
        if (!write_text(json_path, out)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (check_speedup > 0.0) {
        if (hardware_threads < 4) {
            std::printf("speedup check skipped: %u hardware threads "
                        "starve the parallel region\n",
                        hardware_threads);
        } else if (speedup < check_speedup) {
            std::fprintf(stderr,
                         "FAIL: cluster speedup %.2fx below required "
                         "%.2fx\n",
                         speedup, check_speedup);
            return 1;
        }
    }
    if (check_obs_overhead >= 0.0 &&
        obs_overhead > check_obs_overhead) {
        std::fprintf(stderr,
                     "FAIL: observability overhead %.1f%% above the "
                     "allowed %.1f%%\n",
                     100.0 * obs_overhead, 100.0 * check_obs_overhead);
        return 1;
    }
    if (!obs_identical)
        std::fprintf(stderr, "FAIL: metrics/tracing changed the "
                             "simulation result\n");
    return identical && chaos_identical && obs_identical ? 0 : 1;
}
