/**
 * @file
 * Figure 11: DTLB-miss completed page walks per thousand instructions.
 *
 * Paper shape: most data-analysis workloads below services and SPEC
 * CPU; RandomAccess and PTRANS are the HPCC outliers; absolute rates
 * run above the paper's (see EXPERIMENTS.md on TLB scale).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 11: DTLB-miss completed page walks per thousand instructions", reports, "DTLB walks PKI",
        [](const cpu::CounterReport& r) { return r.dtlb_walk_pki; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return m.dtlb_walk_pki;
        }),
        3, "fig11_dtlb.csv", cpu::ReportMetric::kDtlbWalkPki);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.dtlb_walk_pki; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.dtlb_walk_pki; });
    double ra = 0.0;
    double max_other = 0.0;
    for (const auto& r : reports) {
        if (r.workload == "HPCC-RandomAccess")
            ra = r.dtlb_walk_pki;
        else
            max_other = std::max(max_other, r.dtlb_walk_pki);
    }
    core::shape_check("DA below the services on average", da < svc);
    core::shape_check("RandomAccess is the global maximum",
                      ra > max_other);
    return 0;
}
