/**
 * @file
 * Ablation: fault-rate sweep over the Figure 2 cluster runs.
 *
 * The paper's cluster is a real Hadoop 1.0.2 deployment, so its job
 * times already absorb retried attempts and speculative copies. This
 * sweep makes that robustness cost visible: the eleven data-analysis
 * jobs run on eight slaves under increasing task-crash rates, plus one
 * scenario that kills a slave mid-job. Every job must still complete
 * (that is the point of the Hadoop recovery machinery) and mean job
 * time must rise monotonically with the fault rate.
 *
 * --trace-out FILE writes the node-crash scenario's cluster timeline
 * (task attempts, retries, speculation, blacklists, fault epochs) as
 * Chrome trace-event JSON for chrome://tracing / ui.perfetto.dev.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_common.h"

#include "fault/fault.h"
#include "mapreduce/scheduler.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workloads/data_analysis.h"

namespace {

struct SweepPoint
{
    double mean_total_s = 0.0;
    double mean_recovery_s = 0.0;
    std::uint32_t task_failures = 0;
    std::uint32_t max_attempts_seen = 1;
    std::uint32_t completed = 0;
    std::uint32_t jobs = 0;
    std::string first_error;
};

SweepPoint
run_point(const dcb::fault::FaultPlan& plan, dcb::util::CsvWriter* csv,
          double rate_label, dcb::obs::TraceWriter* trace = nullptr)
{
    using namespace dcb;
    const mapreduce::ClusterScheduler scheduler;
    mapreduce::ClusterConfig cluster;
    cluster.slaves = 8;
    cluster.fault = plan;

    SweepPoint point;
    for (const std::string& name : workloads::data_analysis_names()) {
        const auto workload = workloads::make_workload(name);
        const auto& spec = workload->info().cluster_spec;
        fault::FaultInjector injector(plan);
        const auto run = scheduler.run(spec, cluster, &injector, trace,
                                       name);
        ++point.jobs;
        if (run.completed)
            ++point.completed;
        else if (point.first_error.empty())
            point.first_error = name + ": " + run.error;
        point.mean_total_s += run.timings.total_s;
        point.mean_recovery_s += run.recovery_s;
        point.task_failures += run.task_failures;
        point.max_attempts_seen =
            std::max(point.max_attempts_seen, run.max_task_attempts);
        if (csv) {
            csv->add_row({name, util::format_double(rate_label, 4),
                          util::format_double(run.timings.total_s, 2),
                          std::to_string(run.max_task_attempts),
                          std::to_string(run.task_failures),
                          run.completed ? "1" : "0"});
        }
    }
    point.mean_total_s /= point.jobs;
    point.mean_recovery_s /= point.jobs;
    return point;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    using util::format_double;

    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            trace_path = argv[i] + 12;
    }
    std::unique_ptr<obs::TraceWriter> trace;
    if (!trace_path.empty())
        trace = std::make_unique<obs::TraceWriter>();

    const mapreduce::SchedulerConfig policy;  // Hadoop 1.x defaults
    const double rates[] = {0.0, 0.005, 0.01, 0.02, 0.05};

    util::Table table({"task-crash rate", "mean job s", "recovery s",
                       "task failures", "worst attempts", "completed"});
    table.set_title("ablation: task-crash rate sweep (11 DA jobs, "
                    "8 slaves)");
    util::CsvWriter csv({"workload", "rate", "total_s", "max_attempts",
                         "task_failures", "completed"});

    bool all_completed = true;
    bool monotone = true;
    bool attempts_bounded = true;
    double prev_mean = 0.0;
    for (const double rate : rates) {
        fault::FaultPlan plan;
        plan.task_crash_prob = rate;
        const SweepPoint p = run_point(plan, &csv, rate);
        table.add_row({format_double(100 * rate, 1) + "%",
                       format_double(p.mean_total_s, 1),
                       format_double(p.mean_recovery_s, 1),
                       std::to_string(p.task_failures),
                       std::to_string(p.max_attempts_seen),
                       std::to_string(p.completed) + "/" +
                           std::to_string(p.jobs)});
        all_completed = all_completed && p.completed == p.jobs;
        monotone = monotone && p.mean_total_s >= prev_mean;
        attempts_bounded =
            attempts_bounded && p.max_attempts_seen <= policy.max_attempts;
        prev_mean = p.mean_total_s;
    }
    table.print();
    csv.write_file("ablate_faults.csv");

    // One slave dies a minute into the task timeline while 2% of task
    // attempts also crash -- the "unplugged a rack machine" experiment.
    fault::FaultPlan crash_plan;
    crash_plan.task_crash_prob = 0.02;
    crash_plan.node_crash_time_s = 60.0;
    crash_plan.crash_node = 3;
    const SweepPoint crash =
        run_point(crash_plan, &csv, -1.0, trace.get());
    if (trace != nullptr) {
        if (trace->write(trace_path))
            std::printf("wrote %s (%zu trace events)\n",
                        trace_path.c_str(), trace->size());
        else
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_path.c_str());
    }
    std::printf("\nnode 3 dies at t=60s under 2%% task crashes: "
                "%u/%u jobs complete, mean %.1fs "
                "(mean recovery %.1fs, worst attempts %u)\n\n",
                crash.completed, crash.jobs, crash.mean_total_s,
                crash.mean_recovery_s, crash.max_attempts_seen);

    // Past the envelope the bounded retry is supposed to cover, jobs
    // must give up with a diagnostic, not hang or abort: at a 10%
    // per-attempt crash rate some task exhausts its four attempts with
    // near-certainty over thousands of tasks.
    fault::FaultPlan brutal_plan;
    brutal_plan.task_crash_prob = 0.10;
    const SweepPoint brutal = run_point(brutal_plan, nullptr, 0.10);
    std::printf("beyond the envelope, 10%% task crashes: %u/%u jobs "
                "complete; first failure: %s\n\n",
                brutal.completed, brutal.jobs,
                brutal.first_error.c_str());

    core::shape_check("every job completes at every swept rate (<=5%)",
                      all_completed);
    core::shape_check("mean job time rises monotonically with the rate",
                      monotone);
    core::shape_check("no task needs more than max_attempts tries",
                      attempts_bounded &&
                          crash.max_attempts_seen <= policy.max_attempts &&
                          brutal.max_attempts_seen <= policy.max_attempts);
    core::shape_check("all jobs survive a mid-job node crash",
                      crash.completed == crash.jobs);
    core::shape_check("a 10% crash rate exhausts retries with a clear "
                      "error, not a hang",
                      brutal.completed < brutal.jobs &&
                          !brutal.first_error.empty());
    return 0;
}
