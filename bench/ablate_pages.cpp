/**
 * @file
 * Ablation: page size vs TLB behaviour.
 *
 * Our Figures 8 and 11 reproduce the paper's *orderings* but at higher
 * absolute walk rates (EXPERIMENTS.md): with strictly 4 KB pages, multi-
 * MB code and data working sets exceed the 512-entry L2 TLB's 2 MB
 * reach. This sweep reruns TLB-heavy workloads with 2 MB pages (the
 * transparent-huge-page behaviour of the paper-era CentOS kernels) and
 * shows the walk rates collapse toward the paper's scale, supporting
 * that reading of the deviation.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

dcb::cpu::CounterReport
run_with_pages(const std::string& name, std::uint32_t page_bytes,
               std::uint64_t budget)
{
    using namespace dcb;
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = budget;
    config.run.warmup_ops = budget / 4;
    config.memory_config.page_bytes = page_bytes;
    return core::run_workload(name, config).report;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'500'000;

    util::Table table({"workload", "page", "ITLB walks PKI",
                       "DTLB walks PKI", "IPC"});
    table.set_title("ablation: 4 KB vs 2 MB pages");

    bool all_collapse = true;
    for (const std::string name :
         {"Hive-bench", "Media Streaming", "HPCC-RandomAccess"}) {
        const auto small = run_with_pages(name, 4096, budget);
        const auto huge = run_with_pages(name, 2 << 20, budget);
        table.add_row({name, "4 KB",
                       util::format_double(small.itlb_walk_pki, 3),
                       util::format_double(small.dtlb_walk_pki, 3),
                       util::format_double(small.ipc, 2)});
        table.add_row({name, "2 MB",
                       util::format_double(huge.itlb_walk_pki, 3),
                       util::format_double(huge.dtlb_walk_pki, 3),
                       util::format_double(huge.ipc, 2)});
        all_collapse &= huge.dtlb_walk_pki < small.dtlb_walk_pki / 4 +
                                                 0.01;
    }
    table.print();
    std::printf("\n");
    core::shape_check("huge pages collapse the page-walk rates",
                      all_collapse);
    return 0;
}
