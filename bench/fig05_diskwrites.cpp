/**
 * @file
 * Figure 5: disk writes per second for the data-analysis workloads
 * (per-slave device write requests over the simulated job duration).
 *
 * Paper shape: Sort is by far the highest (its output equals its input,
 * so every stage writes), with everything else an order of magnitude
 * lower.
 */

#include "bench_common.h"

#include "workloads/data_analysis.h"

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int
main()
{
    using namespace dcb;
    using util::format_double;

    mapreduce::ClusterSimulator sim;
    mapreduce::ClusterConfig cluster;  // the paper's 4-slave cluster

    util::Table table({"workload", "writes/s (measured)",
                       "writes/s (paper)"});
    table.set_title("Figure 5: disk writes per second per slave");
    util::CsvWriter csv({"workload", "measured", "paper"});

    double sort_rate = 0.0;
    double max_other = 0.0;
    for (const std::string& name : workloads::data_analysis_names()) {
        const auto workload = workloads::make_workload(name);
        const auto timings = sim.run(workload->info().cluster_spec,
                                     cluster);
        const double rate = timings.disk_writes_per_second;
        table.add_row({name, format_double(rate, 1),
                       format_double(
                           core::paper_disk_writes_per_second(name), 0)});
        csv.add_row({name, format_double(rate, 3),
                     format_double(
                         core::paper_disk_writes_per_second(name), 1)});
        if (name == "Sort")
            sort_rate = rate;
        else
            max_other = std::max(max_other, rate);
    }
    table.print();
    csv.write_file("fig05_diskwrites.csv");

    std::printf("\nSort: %.1f writes/s; next-highest workload: %.1f\n\n",
                sort_rate, max_other);
    core::shape_check("Sort has the highest disk write rate",
                      sort_rate > max_other);
    return 0;
}
