/**
 * @file
 * Telemetry-pipeline microbenchmark and CI guard: measures the columnar
 * extent codec and the GK quantile sketch, and gates the invariants the
 * streaming telemetry store promises.
 *
 *  1. Encode throughput + compression: a synthetic 5-column recorder is
 *     streamed through the extent spill path at --rows rows; reports
 *     rows/sec, encoded vs raw bytes and the compression ratio.
 *  2. Sum parity: after spilling, every additive column's recorder sum
 *     must bit-equal the reference running sum kept by the generator.
 *  3. Streamed-vs-in-memory byte identity: one real workload runs twice
 *     with interval telemetry armed -- extent_rows=0 (everything in
 *     memory) vs a small extent -- and the exported CSV/JSON files must
 *     be byte-identical, with the streamed run's peak buffer bounded by
 *     one extent.
 *  4. Sketch accuracy: >=1M lognormal samples, sketch percentiles vs
 *     exact sorted-sample percentiles, rank error gated at epsilon.
 *  5. Sketch merge determinism: two independent constructions of the
 *     same 8-shard merge must produce byte-identical dump() text, and
 *     the merged sketch must honor its widened epsilon.
 *
 * Writes BENCH_telemetry.json (atomic) with every number plus the run
 * manifest; exits nonzero when any gate fails, so CI can run it as-is.
 *
 * Usage: ./bench_telemetry [--ops N] [--rows N] [--sketch-samples N]
 *                          [--workload NAME] [--manifest FILE]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/extent.h"
#include "obs/quantile.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace {

using namespace dcb;
using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Whole file as a string; ok=false when it cannot be read. */
std::string
slurp(const std::string& path, bool* ok)
{
    std::string out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        *ok = false;
        return out;
    }
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    *ok = true;
    return out;
}

/** Rank error of `value` at rank fraction `phi` against sorted data. */
double
rank_error(const std::vector<double>& sorted, double phi, double value)
{
    const double n = static_cast<double>(sorted.size());
    const double target = std::ceil(phi * n);
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
    const double lo_rank = static_cast<double>(lo - sorted.begin()) + 1.0;
    const double hi_rank = static_cast<double>(hi - sorted.begin());
    if (target < lo_rank)
        return (lo_rank - target) / n;
    if (target > hi_rank)
        return (target - hi_rank) / n;
    return 0.0;
}

/** The streamed run's extent size: small enough that the default 2M-op
    workload run crosses many extent boundaries. */
constexpr std::uint32_t kStreamExtentRows = 256;

}  // namespace

int
main(int argc, char** argv)
{
    std::uint64_t encode_rows = 1'000'000;
    std::uint64_t sketch_samples = 1'500'000;
    std::string workload_name = "Sort";
    std::vector<char*> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
            encode_rows = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strncmp(argv[i], "--rows=", 7) == 0)
            encode_rows = std::strtoull(argv[i] + 7, nullptr, 10);
        else if (std::strcmp(argv[i], "--sketch-samples") == 0 &&
                 i + 1 < argc)
            sketch_samples = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strncmp(argv[i], "--sketch-samples=", 17) == 0)
            sketch_samples = std::strtoull(argv[i] + 17, nullptr, 10);
        else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc)
            workload_name = argv[++i];
        else if (std::strncmp(argv[i], "--workload=", 11) == 0)
            workload_name = argv[i] + 11;
        else
            pass.push_back(argv[i]);
    }
    core::HarnessConfig config = bench::config_from_args(
        static_cast<int>(pass.size()), pass.data());
    bool all_ok = true;

    // --- 1+2: synthetic encode throughput, compression, sum parity ---
    const std::vector<std::string> cols = {"instructions", "cycles",
                                           "l2_misses", "ipc",
                                           "rob_occupancy"};
    const std::vector<bool> additive = {true, true, true, false, false};
    obs::TimeSeriesRecorder rec(cols, additive);
    const std::string scratch = "bench_telemetry_scratch.telemetry.dcx";
    rec.enable_spill(scratch, 4096);

    util::Rng rng(42);
    // Reference running sums, accumulated left-to-right exactly like
    // the recorder does -- the bit-parity baseline.
    std::vector<double> ref_sums(cols.size(), 0.0);
    double cum_instr = 0.0;
    double cum_cycles = 0.0;
    double cum_l2 = 0.0;
    const auto encode_start = Clock::now();
    for (std::uint64_t i = 0; i < encode_rows; ++i) {
        double v[5];
        // Counters mimic real interval telemetry: near-constant
        // instruction deltas, fractional cycle accumulators, bursty
        // miss counts.
        const double instr = 10000.0;
        const double cycles = 6000.0 + 250.0 * rng.next_gaussian() +
                              0.125 * static_cast<double>(i % 8);
        const double l2 = std::floor(rng.next_exponential(1.0 / 40.0));
        v[0] = obs::TimeSeriesRecorder::fit_delta(cum_instr,
                                                  cum_instr + instr);
        v[1] = obs::TimeSeriesRecorder::fit_delta(cum_cycles,
                                                  cum_cycles + cycles);
        v[2] = obs::TimeSeriesRecorder::fit_delta(cum_l2, cum_l2 + l2);
        v[3] = v[1] > 0.0 ? v[0] / v[1] : 0.0;
        v[4] = 80.0 + 20.0 * rng.next_double();
        cum_instr += v[0];
        cum_cycles += v[1];
        cum_l2 += v[2];
        for (std::size_t c = 0; c < 5; ++c)
            ref_sums[c] += v[c];
        rec.add_row(i * 10000, 10000, v);
    }
    if (!rec.finalize_spill()) {
        std::fprintf(stderr, "FAIL: cannot commit %s\n", scratch.c_str());
        all_ok = false;
    }
    const double encode_seconds = seconds_since(encode_start);
    const double rows_per_sec =
        encode_seconds > 0.0
            ? static_cast<double>(encode_rows) / encode_seconds
            : 0.0;
    const std::uint64_t encoded = rec.spill_encoded_bytes();
    const std::uint64_t raw = rec.spill_raw_bytes();
    const double compression =
        encoded > 0 ? static_cast<double>(raw) /
                          static_cast<double>(encoded)
                    : 0.0;
    std::printf("encode: %llu rows x %zu cols in %.3f s "
                "(%.0f rows/s), %llu -> %llu bytes (%.2fx)\n",
                static_cast<unsigned long long>(encode_rows), cols.size(),
                encode_seconds, rows_per_sec,
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(encoded), compression);

    bool sum_parity = true;
    for (std::size_t c = 0; c < cols.size(); ++c) {
        if (!additive[c])
            continue;
        if (rec.sum(c) != ref_sums[c]) {
            std::fprintf(stderr,
                         "FAIL: column %s sum %.17g != reference %.17g\n",
                         cols[c].c_str(), rec.sum(c), ref_sums[c]);
            sum_parity = false;
        }
    }
    const std::uint64_t spilled_peak = rec.peak_buffered_rows();
    std::printf("sum parity (spilled vs reference): %s; "
                "peak buffer %llu rows\n",
                sum_parity ? "exact" : "BROKEN",
                static_cast<unsigned long long>(spilled_peak));
    if (!sum_parity || spilled_peak > 4096)
        all_ok = false;
    if (compression <= 1.0) {
        std::fprintf(stderr, "FAIL: compression ratio %.2f not > 1\n",
                     compression);
        all_ok = false;
    }
    std::remove(scratch.c_str());

    // --- 3: real workload, streamed vs in-memory byte identity -------
    const std::uint64_t interval =
        std::max<std::uint64_t>(config.run.op_budget / 2000, 500);
    core::HarnessConfig exact_cfg = config;
    exact_cfg.jobs = 1;
    exact_cfg.telemetry.interval_ops = interval;
    exact_cfg.telemetry.out_path = "obs_telemetry_exact/";
    exact_cfg.telemetry.extent_rows = 0;  // whole series in memory
    core::HarnessConfig stream_cfg = exact_cfg;
    stream_cfg.telemetry.out_path = "obs_telemetry_stream/";
    stream_cfg.telemetry.extent_rows = kStreamExtentRows;

    std::printf("\nworkload %s, %llu ops, telemetry every %llu ops: ",
                workload_name.c_str(),
                static_cast<unsigned long long>(config.run.op_budget),
                static_cast<unsigned long long>(interval));
    const core::RunResult exact_run =
        core::run_workload(workload_name, exact_cfg);
    const core::RunResult stream_run =
        core::run_workload(workload_name, stream_cfg);
    bool csv_identical = false;
    bool json_identical = false;
    std::uint64_t stream_rows = 0;
    std::uint64_t stream_peak_rows = 0;
    std::uint64_t exact_peak_bytes = 0;
    std::uint64_t stream_peak_bytes = 0;
    std::uint64_t stream_encoded = 0;
    std::uint64_t stream_raw = 0;
    if (!exact_run.status.ok || !stream_run.status.ok) {
        std::fprintf(stderr, "FAIL: workload run failed: %s\n",
                     (!exact_run.status.ok ? exact_run : stream_run)
                         .status.error.c_str());
        all_ok = false;
    } else {
        const std::string base = workload_name + ".telemetry.";
        bool ok_a = false;
        bool ok_b = false;
        csv_identical =
            slurp("obs_telemetry_exact/" + base + "csv", &ok_a) ==
                slurp("obs_telemetry_stream/" + base + "csv", &ok_b) &&
            ok_a && ok_b;
        json_identical =
            slurp("obs_telemetry_exact/" + base + "json", &ok_a) ==
                slurp("obs_telemetry_stream/" + base + "json", &ok_b) &&
            ok_a && ok_b;
        stream_rows = stream_run.telemetry->total_rows();
        stream_peak_rows = stream_run.telemetry->peak_buffered_rows();
        exact_peak_bytes = exact_run.telemetry->peak_buffered_bytes();
        stream_peak_bytes = stream_run.telemetry->peak_buffered_bytes();
        stream_encoded = stream_run.telemetry->spill_encoded_bytes();
        stream_raw = stream_run.telemetry->spill_raw_bytes();
        std::printf("%llu rows, %llu extents' worth spilled\n",
                    static_cast<unsigned long long>(stream_rows),
                    static_cast<unsigned long long>(
                        stream_rows / kStreamExtentRows));
        std::printf("  csv byte-identical: %s, json byte-identical: %s\n",
                    csv_identical ? "yes" : "NO -- BUG",
                    json_identical ? "yes" : "NO -- BUG");
        std::printf("  peak recorder buffer: %llu rows (%llu bytes) "
                    "streamed vs %llu bytes in-memory\n",
                    static_cast<unsigned long long>(stream_peak_rows),
                    static_cast<unsigned long long>(stream_peak_bytes),
                    static_cast<unsigned long long>(exact_peak_bytes));
        if (!csv_identical || !json_identical)
            all_ok = false;
        if (stream_run.telemetry->spilled() &&
            stream_peak_rows > kStreamExtentRows) {
            std::fprintf(stderr,
                         "FAIL: streamed peak %llu rows exceeds one "
                         "extent (%u)\n",
                         static_cast<unsigned long long>(stream_peak_rows),
                         kStreamExtentRows);
            all_ok = false;
        }
        if (stream_rows > kStreamExtentRows &&
            !stream_run.telemetry->spilled()) {
            std::fprintf(stderr, "FAIL: long run never spilled\n");
            all_ok = false;
        }
    }

    // --- 4: sketch accuracy against exact percentiles -----------------
    const double eps = obs::QuantileSketch::kDefaultEpsilon;
    obs::QuantileSketch sketch(eps);
    std::vector<double> samples;
    samples.reserve(sketch_samples);
    util::Rng srng(7);
    const auto sketch_start = Clock::now();
    for (std::uint64_t i = 0; i < sketch_samples; ++i) {
        const double v = std::exp(0.8 * srng.next_gaussian());
        sketch.insert(v);
        samples.push_back(v);
    }
    const double sketch_seconds = seconds_since(sketch_start);
    std::sort(samples.begin(), samples.end());
    const double phis[] = {0.5, 0.95, 0.99, 0.999};
    double errors[4];
    double exact_vals[4];
    double sketch_vals[4];
    double max_error = 0.0;
    for (int p = 0; p < 4; ++p) {
        const std::size_t idx = std::min(
            samples.size() - 1,
            static_cast<std::size_t>(
                std::ceil(phis[p] * static_cast<double>(samples.size()))) -
                1);
        exact_vals[p] = samples[idx];
        sketch_vals[p] = sketch.query(phis[p]);
        errors[p] = rank_error(samples, phis[p], sketch_vals[p]);
        max_error = std::max(max_error, errors[p]);
    }
    const double slack = 1.0 / static_cast<double>(sketch_samples);
    std::printf("\nsketch: %llu inserts in %.3f s (%.0f/s), %zu tuples "
                "kept (%.5f%% of samples)\n",
                static_cast<unsigned long long>(sketch_samples),
                sketch_seconds,
                static_cast<double>(sketch_samples) / sketch_seconds,
                sketch.tuples().size(),
                100.0 * static_cast<double>(sketch.tuples().size()) /
                    static_cast<double>(sketch_samples));
    for (int p = 0; p < 4; ++p)
        std::printf("  p%-5g exact %.6f sketch %.6f rank-error %.5f\n",
                    100.0 * phis[p], exact_vals[p], sketch_vals[p],
                    errors[p]);
    if (max_error > eps + slack) {
        std::fprintf(stderr,
                     "FAIL: sketch rank error %.5f above epsilon %.3f\n",
                     max_error, eps);
        all_ok = false;
    }

    // --- 5: sharded merge determinism ---------------------------------
    constexpr std::size_t kShards = 8;
    const auto build_merged = [&] {
        obs::QuantileSketch merged(eps / 2.0);
        for (std::size_t s = 0; s < kShards; ++s) {
            obs::QuantileSketch shard(eps / 2.0);
            util::Rng mrng(100 + s);
            for (std::uint64_t i = 0; i < sketch_samples / kShards; ++i)
                shard.insert(std::exp(0.8 * mrng.next_gaussian()));
            merged.merge(shard);
        }
        return merged;
    };
    const obs::QuantileSketch merged_a = build_merged();
    const obs::QuantileSketch merged_b = build_merged();
    const bool merge_identical = merged_a.dump() == merged_b.dump();
    std::printf("sharded merge (%zu shards at eps/2): byte-identical %s, "
                "merged epsilon %.4f, %zu tuples\n",
                kShards, merge_identical ? "yes" : "NO -- BUG",
                merged_a.epsilon(), merged_a.tuples().size());
    if (!merge_identical)
        all_ok = false;

    // --- JSON artifact -------------------------------------------------
    const char* json_path = "BENCH_telemetry.json";
    std::string temp;
    if (std::FILE* f = util::open_file_atomic(json_path, &temp)) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"encode_rows\": %llu,\n",
                     static_cast<unsigned long long>(encode_rows));
        std::fprintf(f, "  \"encode_columns\": %zu,\n", cols.size());
        std::fprintf(f, "  \"encode_seconds\": %.6f,\n", encode_seconds);
        std::fprintf(f, "  \"encode_rows_per_sec\": %.0f,\n", rows_per_sec);
        std::fprintf(f, "  \"encode_raw_bytes\": %llu,\n",
                     static_cast<unsigned long long>(raw));
        std::fprintf(f, "  \"encode_encoded_bytes\": %llu,\n",
                     static_cast<unsigned long long>(encoded));
        std::fprintf(f, "  \"compression_ratio\": %.4f,\n", compression);
        std::fprintf(f, "  \"sum_parity\": %s,\n",
                     sum_parity ? "true" : "false");
        std::fprintf(f, "  \"workload\": \"%s\",\n", workload_name.c_str());
        std::fprintf(f, "  \"workload_ops\": %llu,\n",
                     static_cast<unsigned long long>(config.run.op_budget));
        std::fprintf(f, "  \"interval_ops\": %llu,\n",
                     static_cast<unsigned long long>(interval));
        std::fprintf(f, "  \"stream_extent_rows\": %u,\n",
                     kStreamExtentRows);
        std::fprintf(f, "  \"stream_rows\": %llu,\n",
                     static_cast<unsigned long long>(stream_rows));
        std::fprintf(f, "  \"csv_identical\": %s,\n",
                     csv_identical ? "true" : "false");
        std::fprintf(f, "  \"json_identical\": %s,\n",
                     json_identical ? "true" : "false");
        std::fprintf(f, "  \"stream_peak_buffered_rows\": %llu,\n",
                     static_cast<unsigned long long>(stream_peak_rows));
        std::fprintf(f, "  \"stream_peak_buffered_bytes\": %llu,\n",
                     static_cast<unsigned long long>(stream_peak_bytes));
        std::fprintf(f, "  \"exact_peak_buffered_bytes\": %llu,\n",
                     static_cast<unsigned long long>(exact_peak_bytes));
        std::fprintf(f, "  \"stream_spill_encoded_bytes\": %llu,\n",
                     static_cast<unsigned long long>(stream_encoded));
        std::fprintf(f, "  \"stream_spill_raw_bytes\": %llu,\n",
                     static_cast<unsigned long long>(stream_raw));
        std::fprintf(f, "  \"sketch\": {\n");
        std::fprintf(f, "    \"samples\": %llu,\n",
                     static_cast<unsigned long long>(sketch_samples));
        std::fprintf(f, "    \"epsilon\": %.6f,\n", eps);
        std::fprintf(f, "    \"seconds\": %.6f,\n", sketch_seconds);
        std::fprintf(f, "    \"tuples\": %zu,\n", sketch.tuples().size());
        std::fprintf(f, "    \"percentiles\": [\n");
        for (int p = 0; p < 4; ++p)
            std::fprintf(f,
                         "      {\"phi\": %g, \"exact\": %.17g, "
                         "\"value\": %.17g, \"rank_error\": %.6f}%s\n",
                         phis[p], exact_vals[p], sketch_vals[p], errors[p],
                         p + 1 < 4 ? "," : "");
        std::fprintf(f, "    ],\n");
        std::fprintf(f, "    \"max_rank_error\": %.6f,\n", max_error);
        std::fprintf(f, "    \"merge_identical\": %s,\n",
                     merge_identical ? "true" : "false");
        std::fprintf(f, "    \"merged_epsilon\": %.6f\n",
                     merged_a.epsilon());
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(
                         bench::peak_rss_bytes()));
        std::fprintf(f, "  \"all_ok\": %s,\n", all_ok ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s\n",
                     bench::manifest().json_fragment(2).c_str());
        std::fprintf(f, "}\n");
        if (!util::commit_file_atomic(f, temp, json_path)) {
            std::fprintf(stderr, "error: cannot write %s\n", json_path);
            return 1;
        }
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "error: cannot write %s\n", json_path);
        return 1;
    }
    if (!all_ok)
        std::fprintf(stderr, "FAIL: telemetry gates violated\n");
    return all_ok ? 0 : 1;
}
