#!/usr/bin/env python3
"""Validate dcbench observability artifacts (CI gate).

Six subcommands, all exiting nonzero with a diagnostic on failure:

  check_obs.py telemetry FILE [FILE...]
      Every additive column of each <workload>.telemetry.json must sum
      EXACTLY (bit-for-bit as IEEE doubles, not within an epsilon) to
      the whole-run total -- the recorder's delta encoding guarantees
      it, and this is the independent check that it held on disk.
      Gauge (non-additive) columns must be finite and non-negative.

  check_obs.py extents DCXFILE [TELEMETRY_JSON]
      Independently re-implements the columnar extent decoder
      (src/obs/extent.h): parses the DCXTELE1 header, decodes every
      extent's delta+zigzag+varint / raw64 / RLE-wrapped blocks,
      verifies each extent's FNV-1a checksum over the exact on-disk
      bytes, re-accumulates every additive column left-to-right and
      compares against the footer running sums BIT-FOR-BIT (the
      sum-induction invariant), and verifies the trailer counts and
      checksum. With TELEMETRY_JSON given, additionally cross-checks
      the decoded row count and the final running sums against the
      exported JSON's rows/totals.

  check_obs.py sketch FILE
      With a JSON FILE: validates the quantile-sketch gates recorded by
      bench_telemetry (every percentile's rank error and the max rank
      error within the sketch epsilon (+1/n slack), sharded merge
      byte-identical). With a .dcx extent FILE (sniffed by magic):
      decodes the persisted sketch section and re-verifies the
      Greenwald-Khanna rank-error invariant from the on-disk bytes
      alone -- tuples sorted, sum of g equal to the insert count,
      g + delta <= floor(2*epsilon*n) + 1 for every tuple (the
      condition that bounds every quantile query's rank error by
      epsilon*n), and min/max bracketing the tuple values.

  check_obs.py prom FILE [SERIES...]
      FILE must be Prometheus text exposition: every family declared
      with a # TYPE line (counter, gauge or summary) before its
      samples, every sample line well-formed with sorted label pairs,
      every value finite, counters non-negative, and summary families
      carrying quantile samples plus _sum/_count. Each named SERIES
      must be present as a family.

  check_obs.py trace FILE [CATEGORY...]
      FILE must parse as Chrome trace-event JSON with a traceEvents
      list, every event must carry the required fields for its phase
      type, and each named CATEGORY must appear at least once
      (e.g. workload sampling task phase fault).

  check_obs.py manifest FILE [KEY...]
      FILE must parse as one flat JSON object and contain every KEY.

Both C++ and this script accumulate in IEEE-754 binary64 left to
right, so "exact" means Python's float sum reproduces the C++ total
bit for bit.
"""

import json
import math
import re
import struct
import sys


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_telemetry(paths):
    if not paths:
        fail("no telemetry files given")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        cols = doc["columns"]
        additive = doc["additive"]
        totals = doc["totals"]
        rows = doc["rows"]
        if not rows:
            fail(f"{path}: no interval rows")
        if not (len(cols) == len(additive) == len(totals)):
            fail(f"{path}: columns/additive/totals length mismatch")
        for row in rows:
            if len(row["values"]) != len(cols):
                fail(f"{path}: row {row['interval']} has "
                     f"{len(row['values'])} values, want {len(cols)}")
        exact = 0
        for i, name in enumerate(cols):
            values = [row["values"][i] for row in rows]
            if additive[i]:
                acc = 0.0
                for v in values:
                    acc += v
                if acc != totals[i]:
                    fail(f"{path}: column '{name}' interval sum "
                         f"{acc!r} != total {totals[i]!r} "
                         f"(diff {acc - totals[i]:g})")
                exact += 1
            else:
                for v in values:
                    if not math.isfinite(v) or v < 0.0:
                        fail(f"{path}: gauge '{name}' value {v!r} "
                             "not finite/non-negative")
        ops = sum(row["op_count"] for row in rows)
        print(f"check_obs: OK: {path}: {len(rows)} intervals x "
              f"{len(cols)} columns, {exact} additive columns sum "
              f"exactly, {ops:.0f} ops covered")


# --- Columnar extent decoding (mirror of src/obs/extent.cc) ----------

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1
EXTENT_MAGIC = 0x31545845   # "EXT1"
SKETCH_MAGIC = 0x31484B53   # "SKH1"
TRAILER_MAGIC = 0x31444E45  # "END1"
RLE_FLAG = 0x80


def fnv1a(data, seed=FNV_OFFSET):
    h = seed
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def get_varint(data, pos):
    """LEB128 decode; returns (value, next_pos)."""
    out = 0
    shift = 0
    while shift < 64:
        if pos >= len(data):
            fail("truncated varint")
        b = data[pos]
        pos += 1
        out |= (b & 0x7F) << shift
        if not b & 0x80:
            return out, pos
        shift += 7
    fail("overlong varint")


def zigzag_decode(v):
    return (v >> 1) ^ -(v & 1)


def rle_decode(data):
    """PackBits-style: c < 128 copies c+1 literals, else repeats the
    next byte c-125 times."""
    out = bytearray()
    i = 0
    while i < len(data):
        c = data[i]
        i += 1
        if c < 128:
            n = c + 1
            if i + n > len(data):
                fail("corrupt RLE stream (literal run past end)")
            out += data[i:i + n]
            i += n
        else:
            if i >= len(data):
                fail("corrupt RLE stream (missing repeat byte)")
            out += bytes([data[i]]) * (c - 125)
            i += 1
    return bytes(out)


def decode_block(data, pos, count):
    """One (tag, varint len, payload) block -> (ints, next_pos, body
    bytes covered). Integer blocks decode to Python ints; raw blocks to
    u64 bit patterns."""
    start = pos
    if pos >= len(data):
        fail("truncated block tag")
    tag = data[pos]
    pos += 1
    length, pos = get_varint(data, pos)
    if pos + length > len(data):
        fail("truncated block payload")
    payload = data[pos:pos + length]
    pos += length
    if tag & RLE_FLAG:
        payload = rle_decode(payload)
    enc = tag & ~RLE_FLAG
    if enc == 1:  # delta + zigzag + varint
        values = []
        prev = 0
        p = 0
        for _ in range(count):
            u, p = get_varint(payload, p)
            prev += zigzag_decode(u)
            values.append(prev)
        if p != len(payload):
            fail("trailing bytes in varint block")
        return ("int", values), pos, data[start:pos]
    if enc == 0:  # raw 8-byte bit patterns
        if len(payload) != count * 8:
            fail("raw block length mismatch")
        values = list(struct.unpack(f"<{count}Q", payload))
        return ("raw", values), pos, data[start:pos]
    fail(f"unknown column encoding {enc}")


def u64_to_double(bits):
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def parse_sketch_section(data, pos, path):
    """pos sits just after the SKH1 magic; returns (sketches, next_pos).
    The checksum covers sketch_count through the last tuple byte."""
    body_start = pos
    if pos + 4 > len(data):
        fail(f"{path}: truncated sketch section")
    (count,) = struct.unpack_from("<I", data, pos)
    pos += 4
    sketches = []
    for _ in range(count):
        if pos + 2 > len(data):
            fail(f"{path}: truncated sketch name")
        (name_len,) = struct.unpack_from("<H", data, pos)
        pos += 2
        name = data[pos:pos + name_len].decode()
        pos += name_len
        if pos + 32 > len(data):
            fail(f"{path}: truncated sketch header for '{name}'")
        eps_bits, n, min_bits, max_bits = struct.unpack_from(
            "<QQQQ", data, pos)
        pos += 32
        tuple_count, pos = get_varint(data, pos)
        tuples = []
        for _ in range(tuple_count):
            if pos + 8 > len(data):
                fail(f"{path}: truncated sketch tuples for '{name}'")
            (value_bits,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            g, pos = get_varint(data, pos)
            delta, pos = get_varint(data, pos)
            tuples.append((u64_to_double(value_bits), g, delta))
        sketches.append({
            "name": name,
            "epsilon": u64_to_double(eps_bits),
            "count": n,
            "min": u64_to_double(min_bits),
            "max": u64_to_double(max_bits),
            "tuples": tuples,
        })
    if pos + 8 > len(data):
        fail(f"{path}: truncated sketch checksum")
    (want,) = struct.unpack_from("<Q", data, pos)
    if fnv1a(data[body_start:pos]) != want:
        fail(f"{path}: sketch section checksum mismatch")
    pos += 8
    return sketches, pos


def verify_gk(path, sk):
    """The Greenwald-Khanna invariant, re-proved from the persisted
    tuples: values sorted, the rank gaps g sum to the insert count, and
    every tuple's uncertainty g + delta stays within floor(2*eps*n)+1.
    That last bound is what caps any quantile query's rank error at
    eps*n, so checking it on disk re-verifies the rank-error guarantee
    without trusting the writer."""
    name, eps, n = sk["name"], sk["epsilon"], sk["count"]
    tuples = sk["tuples"]
    if not (0.0 < eps < 1.0):
        fail(f"{path}: sketch '{name}' epsilon {eps!r} out of range")
    if n == 0:
        if tuples:
            fail(f"{path}: sketch '{name}' empty but has tuples")
        return
    if not tuples:
        fail(f"{path}: sketch '{name}' has {n} inserts but no tuples")
    cap = math.floor(2.0 * eps * n) + 1
    g_total = 0
    prev = None
    for i, (v, g, delta) in enumerate(tuples):
        if not math.isfinite(v):
            fail(f"{path}: sketch '{name}' tuple {i} value {v!r}")
        if prev is not None and v < prev:
            fail(f"{path}: sketch '{name}' tuples not sorted at {i}")
        prev = v
        g_total += g
        if g + delta > cap:
            fail(f"{path}: sketch '{name}' tuple {i}: g+delta "
                 f"{g + delta} exceeds floor(2*eps*n)+1 = {cap}; the "
                 "epsilon rank-error bound does not hold")
    if g_total != n:
        fail(f"{path}: sketch '{name}' rank gaps sum to {g_total}, "
             f"want insert count {n}")
    if tuples[0][0] < sk["min"] or tuples[-1][0] > sk["max"]:
        fail(f"{path}: sketch '{name}' tuple values escape "
             f"[min={sk['min']!r}, max={sk['max']!r}]")


def check_extents(dcx_path, json_path=None):
    with open(dcx_path, "rb") as f:
        data = f.read()
    if data[:8] != b"DCXTELE1":
        fail(f"{dcx_path}: bad file magic")
    version, ncols = struct.unpack_from("<II", data, 8)
    if version != 1:
        fail(f"{dcx_path}: unsupported version {version}")
    pos = 16
    columns = []
    additive = []
    for _ in range(ncols):
        (name_len,) = struct.unpack_from("<H", data, pos)
        pos += 2
        columns.append(data[pos:pos + name_len].decode())
        pos += name_len
        additive.append(data[pos] != 0)
        pos += 1
    n_add = sum(additive)

    sums = [0.0] * n_add
    rows_read = 0
    extents_read = 0
    encodings = {}
    sketches = []
    trailer_seen = False
    while pos < len(data):
        (magic,) = struct.unpack_from("<I", data, pos)
        pos += 4
        if magic == SKETCH_MAGIC:
            sketches, pos = parse_sketch_section(data, pos, dcx_path)
            for sk in sketches:
                verify_gk(dcx_path, sk)
            continue
        if magic == TRAILER_MAGIC:
            total_rows, total_extents, want = struct.unpack_from(
                "<QQQ", data, pos)
            if fnv1a(data[pos:pos + 16]) != want:
                fail(f"{dcx_path}: trailer checksum mismatch")
            if total_rows != rows_read or total_extents != extents_read:
                fail(f"{dcx_path}: trailer counts ({total_rows} rows, "
                     f"{total_extents} extents) disagree with decoded "
                     f"({rows_read}, {extents_read})")
            pos += 24
            trailer_seen = True
            break
        if magic != EXTENT_MAGIC:
            fail(f"{dcx_path}: bad extent magic at byte {pos - 4}")
        body_start = pos
        (count,) = struct.unpack_from("<I", data, pos)
        pos += 4
        cols = []
        for _ in range(ncols + 2):  # first_op, op_count, then columns
            block, pos, _ = decode_block(data, pos, count)
            kind, vals = block
            encodings[kind] = encodings.get(kind, 0) + 1
            if kind == "int":
                cols.append([float(v) for v in vals])
            else:
                cols.append([struct.unpack("<d", struct.pack("<Q", u))[0]
                             for u in vals])
        stored_sums = data[pos:pos + n_add * 8]
        pos += n_add * 8
        (want,) = struct.unpack_from("<Q", data, pos)
        if fnv1a(data[body_start:pos]) != want:
            fail(f"{dcx_path}: extent {extents_read} checksum mismatch")
        pos += 8
        # The induction step: re-accumulate row-by-row in the same
        # left-to-right order the recorder used and compare the running
        # sums against the footer bit patterns.
        for r in range(count):
            a = 0
            for c in range(ncols):
                if additive[c]:
                    sums[a] += cols[c + 2][r]
                    a += 1
        for a in range(n_add):
            if struct.pack("<d", sums[a]) != stored_sums[a * 8:a * 8 + 8]:
                fail(f"{dcx_path}: extent {extents_read} footer "
                     f"running-sum mismatch (additive column {a}): "
                     "column sum invariant violated")
        rows_read += count
        extents_read += 1
    if not trailer_seen:
        fail(f"{dcx_path}: missing trailer (truncated file)")
    if pos != len(data):
        fail(f"{dcx_path}: {len(data) - pos} trailing bytes after "
             "trailer")

    if json_path is not None:
        with open(json_path) as f:
            doc = json.load(f)
        if len(doc["rows"]) != rows_read:
            fail(f"{dcx_path}: {rows_read} decoded rows but "
                 f"{json_path} exports {len(doc['rows'])}")
        add_totals = [t for t, a in zip(doc["totals"], doc["additive"])
                      if a]
        for a, (got, want) in enumerate(zip(sums, add_totals)):
            if struct.pack("<d", got) != struct.pack("<d", want):
                fail(f"{dcx_path}: final running sum {got!r} != "
                     f"{json_path} total {want!r} (additive column {a})")
    enc_summary = ", ".join(f"{k}={v}" for k, v in sorted(
        encodings.items()))
    print(f"check_obs: OK: {dcx_path}: {extents_read} extents, "
          f"{rows_read} rows x {ncols} columns ({enc_summary}), "
          f"{n_add} additive running sums verified bitwise at every "
          "footer"
          + (f", {len(sketches)} persisted sketches pass the GK "
             "invariant" if sketches else "")
          + (f", totals match {json_path}" if json_path else ""))
    return sketches


def skip_extent(data, pos, ncols, n_add, path):
    """Walk one extent without decoding its blocks (tag + varint len +
    payload each, then footer sums and checksum)."""
    if pos + 4 > len(data):
        fail(f"{path}: truncated extent")
    pos += 4  # row count
    for _ in range(ncols + 2):
        if pos >= len(data):
            fail(f"{path}: truncated extent block")
        pos += 1  # tag
        length, pos = get_varint(data, pos)
        pos += length
    pos += n_add * 8 + 8
    if pos > len(data):
        fail(f"{path}: truncated extent footer")
    return pos


def check_sketch_dcx(path, data):
    """Re-verify the GK rank-error invariant from a .dcx file's
    persisted sketch section alone (extent bodies are skipped, not
    re-verified -- that is the `extents` subcommand's job)."""
    version, ncols = struct.unpack_from("<II", data, 8)
    if version != 1:
        fail(f"{path}: unsupported version {version}")
    pos = 16
    additive = []
    for _ in range(ncols):
        (name_len,) = struct.unpack_from("<H", data, pos)
        pos += 2 + name_len
        additive.append(data[pos] != 0)
        pos += 1
    n_add = sum(additive)
    sketches = []
    while pos < len(data):
        (magic,) = struct.unpack_from("<I", data, pos)
        pos += 4
        if magic == EXTENT_MAGIC:
            pos = skip_extent(data, pos, ncols, n_add, path)
        elif magic == SKETCH_MAGIC:
            sketches, pos = parse_sketch_section(data, pos, path)
        elif magic == TRAILER_MAGIC:
            pos += 24
            break
        else:
            fail(f"{path}: bad section magic at byte {pos - 4}")
    if not sketches:
        fail(f"{path}: no persisted sketch section")
    for sk in sketches:
        verify_gk(path, sk)
    total = sum(sk["count"] for sk in sketches)
    print(f"check_obs: OK: {path}: {len(sketches)} persisted sketches "
          f"({total} observations) re-verified from disk: tuples "
          "sorted, rank gaps sum to the insert count, g+delta within "
          "floor(2*eps*n)+1 everywhere")


def check_sketch(path):
    with open(path, "rb") as f:
        head = f.read(8)
        if head == b"DCXTELE1":
            check_sketch_dcx(path, head + f.read())
            return
    with open(path) as f:
        doc = json.load(f)
    sk = doc.get("sketch")
    if not isinstance(sk, dict):
        fail(f"{path}: no 'sketch' object")
    eps = sk["epsilon"]
    samples = sk["samples"]
    slack = 1.0 / samples if samples else 0.0
    for pct in sk["percentiles"]:
        if pct["rank_error"] > eps + slack:
            fail(f"{path}: phi={pct['phi']} rank error "
                 f"{pct['rank_error']} above epsilon {eps}")
    if sk["max_rank_error"] > eps + slack:
        fail(f"{path}: max rank error {sk['max_rank_error']} above "
             f"epsilon {eps}")
    if not sk["merge_identical"]:
        fail(f"{path}: sharded sketch merge was not byte-identical")
    print(f"check_obs: OK: {path}: {len(sk['percentiles'])} percentiles "
          f"over {samples} samples within rank error {eps}, sharded "
          "merge byte-identical")


SAMPLE_RE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)'        # metric name
    r'(?:\{([^{}]*)\})?'                   # optional label set
    r' (-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|inf|nan))$')
LABEL_RE = re.compile(r'^([A-Za-z_][A-Za-z0-9_]*)="([^"\\]*)"$')


def check_prom(path, required_series):
    with open(path) as f:
        text = f.read()
    families = {}       # name -> type
    samples = {}        # family -> sample count
    summary_parts = {}  # family -> set of seen parts
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "summary"):
                fail(f"{path}:{lineno}: malformed TYPE line: {line}")
            if parts[2] in families:
                fail(f"{path}:{lineno}: family '{parts[2]}' declared "
                     "twice")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{path}:{lineno}: malformed sample line: {line}")
        name, labelstr, valuestr = m.groups()
        value = float(valuestr)
        if not math.isfinite(value):
            fail(f"{path}:{lineno}: non-finite value in: {line}")
        labels = {}
        if labelstr:
            for pair in labelstr.split(","):
                lm = LABEL_RE.match(pair)
                if lm is None:
                    fail(f"{path}:{lineno}: malformed label '{pair}'")
                if lm.group(1) in labels:
                    fail(f"{path}:{lineno}: duplicate label "
                         f"'{lm.group(1)}'")
                labels[lm.group(1)] = lm.group(2)
        # Summary families expose name{quantile=...}, name_sum and
        # name_count; everything else samples under its family name.
        family, part = name, "sample"
        if name not in families:
            for suffix in ("_sum", "_count"):
                base = name[:-len(suffix)] if name.endswith(suffix) \
                    else None
                if base and families.get(base) == "summary":
                    family, part = base, suffix
                    break
        if family not in families:
            fail(f"{path}:{lineno}: sample '{name}' has no preceding "
                 "# TYPE declaration")
        kind = families[family]
        if kind == "summary" and part == "sample":
            if "quantile" not in labels:
                fail(f"{path}:{lineno}: summary sample without a "
                     f"quantile label: {line}")
            part = "quantile"
        if kind == "counter" and value < 0.0:
            fail(f"{path}:{lineno}: negative counter value: {line}")
        samples[family] = samples.get(family, 0) + 1
        summary_parts.setdefault(family, set()).add(part)
    for family, kind in families.items():
        if samples.get(family, 0) == 0:
            fail(f"{path}: family '{family}' declared but has no "
                 "samples")
        if kind == "summary":
            missing = {"quantile", "_sum", "_count"} - \
                summary_parts[family]
            if missing:
                fail(f"{path}: summary '{family}' missing "
                     f"{sorted(missing)} samples")
    for name in required_series:
        if name not in families:
            fail(f"{path}: required series '{name}' absent; has "
                 f"{sorted(families)}")
    total = sum(samples.values())
    print(f"check_obs: OK: {path}: {len(families)} families, {total} "
          "samples, all declared before use with finite values")


def check_trace(path, required_cats):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents list")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}': {ev}")
        if ev["ph"] in ("X", "i") and "ts" not in ev:
            fail(f"{path}: event {i} missing 'ts': {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event {i} missing 'dur': {ev}")
    cats = {}
    for ev in events:
        cats[ev.get("cat", "")] = cats.get(ev.get("cat", ""), 0) + 1
    for cat in required_cats:
        if cats.get(cat, 0) == 0:
            fail(f"{path}: no '{cat}' events; has {sorted(cats)}")
    summary = ", ".join(f"{c}={n}" for c, n in sorted(cats.items()) if c)
    print(f"check_obs: OK: {path}: {len(events)} events ({summary})")


def check_manifest(path, required_keys):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: not a flat JSON object")
    for key in required_keys:
        if key not in doc:
            fail(f"{path}: missing manifest key '{key}'")
    print(f"check_obs: OK: {path}: {len(doc)} manifest entries")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    mode, args = argv[1], argv[2:]
    if mode == "telemetry":
        check_telemetry(args)
    elif mode == "extents":
        check_extents(args[0], args[1] if len(args) > 1 else None)
    elif mode == "sketch":
        check_sketch(args[0])
    elif mode == "prom":
        check_prom(args[0], args[1:])
    elif mode == "trace":
        check_trace(args[0], args[1:])
    elif mode == "manifest":
        check_manifest(args[0], args[1:])
    else:
        fail(f"unknown mode '{mode}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
