#!/usr/bin/env python3
"""Validate dcbench observability artifacts (CI gate).

Three subcommands, all exiting nonzero with a diagnostic on failure:

  check_obs.py telemetry FILE [FILE...]
      Every additive column of each <workload>.telemetry.json must sum
      EXACTLY (bit-for-bit as IEEE doubles, not within an epsilon) to
      the whole-run total -- the recorder's delta encoding guarantees
      it, and this is the independent check that it held on disk.
      Gauge (non-additive) columns must be finite and non-negative.

  check_obs.py trace FILE [CATEGORY...]
      FILE must parse as Chrome trace-event JSON with a traceEvents
      list, every event must carry the required fields for its phase
      type, and each named CATEGORY must appear at least once
      (e.g. workload sampling task phase fault).

  check_obs.py manifest FILE [KEY...]
      FILE must parse as one flat JSON object and contain every KEY.

Both C++ and this script accumulate in IEEE-754 binary64 left to
right, so "exact" means Python's float sum reproduces the C++ total
bit for bit.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_telemetry(paths):
    if not paths:
        fail("no telemetry files given")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        cols = doc["columns"]
        additive = doc["additive"]
        totals = doc["totals"]
        rows = doc["rows"]
        if not rows:
            fail(f"{path}: no interval rows")
        if not (len(cols) == len(additive) == len(totals)):
            fail(f"{path}: columns/additive/totals length mismatch")
        for row in rows:
            if len(row["values"]) != len(cols):
                fail(f"{path}: row {row['interval']} has "
                     f"{len(row['values'])} values, want {len(cols)}")
        exact = 0
        for i, name in enumerate(cols):
            values = [row["values"][i] for row in rows]
            if additive[i]:
                acc = 0.0
                for v in values:
                    acc += v
                if acc != totals[i]:
                    fail(f"{path}: column '{name}' interval sum "
                         f"{acc!r} != total {totals[i]!r} "
                         f"(diff {acc - totals[i]:g})")
                exact += 1
            else:
                for v in values:
                    if not math.isfinite(v) or v < 0.0:
                        fail(f"{path}: gauge '{name}' value {v!r} "
                             "not finite/non-negative")
        ops = sum(row["op_count"] for row in rows)
        print(f"check_obs: OK: {path}: {len(rows)} intervals x "
              f"{len(cols)} columns, {exact} additive columns sum "
              f"exactly, {ops:.0f} ops covered")


def check_trace(path, required_cats):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents list")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}': {ev}")
        if ev["ph"] in ("X", "i") and "ts" not in ev:
            fail(f"{path}: event {i} missing 'ts': {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event {i} missing 'dur': {ev}")
    cats = {}
    for ev in events:
        cats[ev.get("cat", "")] = cats.get(ev.get("cat", ""), 0) + 1
    for cat in required_cats:
        if cats.get(cat, 0) == 0:
            fail(f"{path}: no '{cat}' events; has {sorted(cats)}")
    summary = ", ".join(f"{c}={n}" for c, n in sorted(cats.items()) if c)
    print(f"check_obs: OK: {path}: {len(events)} events ({summary})")


def check_manifest(path, required_keys):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: not a flat JSON object")
    for key in required_keys:
        if key not in doc:
            fail(f"{path}: missing manifest key '{key}'")
    print(f"check_obs: OK: {path}: {len(doc)} manifest entries")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    mode, args = argv[1], argv[2:]
    if mode == "telemetry":
        check_telemetry(args)
    elif mode == "trace":
        check_trace(args[0], args[1:])
    elif mode == "manifest":
        check_manifest(args[0], args[1:])
    else:
        fail(f"unknown mode '{mode}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
