#!/usr/bin/env python3
"""Validate dcbench observability artifacts (CI gate).

Five subcommands, all exiting nonzero with a diagnostic on failure:

  check_obs.py telemetry FILE [FILE...]
      Every additive column of each <workload>.telemetry.json must sum
      EXACTLY (bit-for-bit as IEEE doubles, not within an epsilon) to
      the whole-run total -- the recorder's delta encoding guarantees
      it, and this is the independent check that it held on disk.
      Gauge (non-additive) columns must be finite and non-negative.

  check_obs.py extents DCXFILE [TELEMETRY_JSON]
      Independently re-implements the columnar extent decoder
      (src/obs/extent.h): parses the DCXTELE1 header, decodes every
      extent's delta+zigzag+varint / raw64 / RLE-wrapped blocks,
      verifies each extent's FNV-1a checksum over the exact on-disk
      bytes, re-accumulates every additive column left-to-right and
      compares against the footer running sums BIT-FOR-BIT (the
      sum-induction invariant), and verifies the trailer counts and
      checksum. With TELEMETRY_JSON given, additionally cross-checks
      the decoded row count and the final running sums against the
      exported JSON's rows/totals.

  check_obs.py sketch BENCH_TELEMETRY_JSON
      Validates the quantile-sketch gates recorded by bench_telemetry:
      every percentile's rank error and the max rank error must be
      within the sketch epsilon (+1/n slack), and the sharded merge
      must have been byte-identical.

  check_obs.py trace FILE [CATEGORY...]
      FILE must parse as Chrome trace-event JSON with a traceEvents
      list, every event must carry the required fields for its phase
      type, and each named CATEGORY must appear at least once
      (e.g. workload sampling task phase fault).

  check_obs.py manifest FILE [KEY...]
      FILE must parse as one flat JSON object and contain every KEY.

Both C++ and this script accumulate in IEEE-754 binary64 left to
right, so "exact" means Python's float sum reproduces the C++ total
bit for bit.
"""

import json
import math
import struct
import sys


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_telemetry(paths):
    if not paths:
        fail("no telemetry files given")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        cols = doc["columns"]
        additive = doc["additive"]
        totals = doc["totals"]
        rows = doc["rows"]
        if not rows:
            fail(f"{path}: no interval rows")
        if not (len(cols) == len(additive) == len(totals)):
            fail(f"{path}: columns/additive/totals length mismatch")
        for row in rows:
            if len(row["values"]) != len(cols):
                fail(f"{path}: row {row['interval']} has "
                     f"{len(row['values'])} values, want {len(cols)}")
        exact = 0
        for i, name in enumerate(cols):
            values = [row["values"][i] for row in rows]
            if additive[i]:
                acc = 0.0
                for v in values:
                    acc += v
                if acc != totals[i]:
                    fail(f"{path}: column '{name}' interval sum "
                         f"{acc!r} != total {totals[i]!r} "
                         f"(diff {acc - totals[i]:g})")
                exact += 1
            else:
                for v in values:
                    if not math.isfinite(v) or v < 0.0:
                        fail(f"{path}: gauge '{name}' value {v!r} "
                             "not finite/non-negative")
        ops = sum(row["op_count"] for row in rows)
        print(f"check_obs: OK: {path}: {len(rows)} intervals x "
              f"{len(cols)} columns, {exact} additive columns sum "
              f"exactly, {ops:.0f} ops covered")


# --- Columnar extent decoding (mirror of src/obs/extent.cc) ----------

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1
EXTENT_MAGIC = 0x31545845   # "EXT1"
TRAILER_MAGIC = 0x31444E45  # "END1"
RLE_FLAG = 0x80


def fnv1a(data, seed=FNV_OFFSET):
    h = seed
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def get_varint(data, pos):
    """LEB128 decode; returns (value, next_pos)."""
    out = 0
    shift = 0
    while shift < 64:
        if pos >= len(data):
            fail("truncated varint")
        b = data[pos]
        pos += 1
        out |= (b & 0x7F) << shift
        if not b & 0x80:
            return out, pos
        shift += 7
    fail("overlong varint")


def zigzag_decode(v):
    return (v >> 1) ^ -(v & 1)


def rle_decode(data):
    """PackBits-style: c < 128 copies c+1 literals, else repeats the
    next byte c-125 times."""
    out = bytearray()
    i = 0
    while i < len(data):
        c = data[i]
        i += 1
        if c < 128:
            n = c + 1
            if i + n > len(data):
                fail("corrupt RLE stream (literal run past end)")
            out += data[i:i + n]
            i += n
        else:
            if i >= len(data):
                fail("corrupt RLE stream (missing repeat byte)")
            out += bytes([data[i]]) * (c - 125)
            i += 1
    return bytes(out)


def decode_block(data, pos, count):
    """One (tag, varint len, payload) block -> (ints, next_pos, body
    bytes covered). Integer blocks decode to Python ints; raw blocks to
    u64 bit patterns."""
    start = pos
    if pos >= len(data):
        fail("truncated block tag")
    tag = data[pos]
    pos += 1
    length, pos = get_varint(data, pos)
    if pos + length > len(data):
        fail("truncated block payload")
    payload = data[pos:pos + length]
    pos += length
    if tag & RLE_FLAG:
        payload = rle_decode(payload)
    enc = tag & ~RLE_FLAG
    if enc == 1:  # delta + zigzag + varint
        values = []
        prev = 0
        p = 0
        for _ in range(count):
            u, p = get_varint(payload, p)
            prev += zigzag_decode(u)
            values.append(prev)
        if p != len(payload):
            fail("trailing bytes in varint block")
        return ("int", values), pos, data[start:pos]
    if enc == 0:  # raw 8-byte bit patterns
        if len(payload) != count * 8:
            fail("raw block length mismatch")
        values = list(struct.unpack(f"<{count}Q", payload))
        return ("raw", values), pos, data[start:pos]
    fail(f"unknown column encoding {enc}")


def check_extents(dcx_path, json_path=None):
    with open(dcx_path, "rb") as f:
        data = f.read()
    if data[:8] != b"DCXTELE1":
        fail(f"{dcx_path}: bad file magic")
    version, ncols = struct.unpack_from("<II", data, 8)
    if version != 1:
        fail(f"{dcx_path}: unsupported version {version}")
    pos = 16
    columns = []
    additive = []
    for _ in range(ncols):
        (name_len,) = struct.unpack_from("<H", data, pos)
        pos += 2
        columns.append(data[pos:pos + name_len].decode())
        pos += name_len
        additive.append(data[pos] != 0)
        pos += 1
    n_add = sum(additive)

    sums = [0.0] * n_add
    rows_read = 0
    extents_read = 0
    encodings = {}
    trailer_seen = False
    while pos < len(data):
        (magic,) = struct.unpack_from("<I", data, pos)
        pos += 4
        if magic == TRAILER_MAGIC:
            total_rows, total_extents, want = struct.unpack_from(
                "<QQQ", data, pos)
            if fnv1a(data[pos:pos + 16]) != want:
                fail(f"{dcx_path}: trailer checksum mismatch")
            if total_rows != rows_read or total_extents != extents_read:
                fail(f"{dcx_path}: trailer counts ({total_rows} rows, "
                     f"{total_extents} extents) disagree with decoded "
                     f"({rows_read}, {extents_read})")
            pos += 24
            trailer_seen = True
            break
        if magic != EXTENT_MAGIC:
            fail(f"{dcx_path}: bad extent magic at byte {pos - 4}")
        body_start = pos
        (count,) = struct.unpack_from("<I", data, pos)
        pos += 4
        cols = []
        for _ in range(ncols + 2):  # first_op, op_count, then columns
            block, pos, _ = decode_block(data, pos, count)
            kind, vals = block
            encodings[kind] = encodings.get(kind, 0) + 1
            if kind == "int":
                cols.append([float(v) for v in vals])
            else:
                cols.append([struct.unpack("<d", struct.pack("<Q", u))[0]
                             for u in vals])
        stored_sums = data[pos:pos + n_add * 8]
        pos += n_add * 8
        (want,) = struct.unpack_from("<Q", data, pos)
        if fnv1a(data[body_start:pos]) != want:
            fail(f"{dcx_path}: extent {extents_read} checksum mismatch")
        pos += 8
        # The induction step: re-accumulate row-by-row in the same
        # left-to-right order the recorder used and compare the running
        # sums against the footer bit patterns.
        for r in range(count):
            a = 0
            for c in range(ncols):
                if additive[c]:
                    sums[a] += cols[c + 2][r]
                    a += 1
        for a in range(n_add):
            if struct.pack("<d", sums[a]) != stored_sums[a * 8:a * 8 + 8]:
                fail(f"{dcx_path}: extent {extents_read} footer "
                     f"running-sum mismatch (additive column {a}): "
                     "column sum invariant violated")
        rows_read += count
        extents_read += 1
    if not trailer_seen:
        fail(f"{dcx_path}: missing trailer (truncated file)")
    if pos != len(data):
        fail(f"{dcx_path}: {len(data) - pos} trailing bytes after "
             "trailer")

    if json_path is not None:
        with open(json_path) as f:
            doc = json.load(f)
        if len(doc["rows"]) != rows_read:
            fail(f"{dcx_path}: {rows_read} decoded rows but "
                 f"{json_path} exports {len(doc['rows'])}")
        add_totals = [t for t, a in zip(doc["totals"], doc["additive"])
                      if a]
        for a, (got, want) in enumerate(zip(sums, add_totals)):
            if struct.pack("<d", got) != struct.pack("<d", want):
                fail(f"{dcx_path}: final running sum {got!r} != "
                     f"{json_path} total {want!r} (additive column {a})")
    enc_summary = ", ".join(f"{k}={v}" for k, v in sorted(
        encodings.items()))
    print(f"check_obs: OK: {dcx_path}: {extents_read} extents, "
          f"{rows_read} rows x {ncols} columns ({enc_summary}), "
          f"{n_add} additive running sums verified bitwise at every "
          "footer"
          + (f", totals match {json_path}" if json_path else ""))


def check_sketch(path):
    with open(path) as f:
        doc = json.load(f)
    sk = doc.get("sketch")
    if not isinstance(sk, dict):
        fail(f"{path}: no 'sketch' object")
    eps = sk["epsilon"]
    samples = sk["samples"]
    slack = 1.0 / samples if samples else 0.0
    for pct in sk["percentiles"]:
        if pct["rank_error"] > eps + slack:
            fail(f"{path}: phi={pct['phi']} rank error "
                 f"{pct['rank_error']} above epsilon {eps}")
    if sk["max_rank_error"] > eps + slack:
        fail(f"{path}: max rank error {sk['max_rank_error']} above "
             f"epsilon {eps}")
    if not sk["merge_identical"]:
        fail(f"{path}: sharded sketch merge was not byte-identical")
    print(f"check_obs: OK: {path}: {len(sk['percentiles'])} percentiles "
          f"over {samples} samples within rank error {eps}, sharded "
          "merge byte-identical")


def check_trace(path, required_cats):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents list")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}': {ev}")
        if ev["ph"] in ("X", "i") and "ts" not in ev:
            fail(f"{path}: event {i} missing 'ts': {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event {i} missing 'dur': {ev}")
    cats = {}
    for ev in events:
        cats[ev.get("cat", "")] = cats.get(ev.get("cat", ""), 0) + 1
    for cat in required_cats:
        if cats.get(cat, 0) == 0:
            fail(f"{path}: no '{cat}' events; has {sorted(cats)}")
    summary = ", ".join(f"{c}={n}" for c, n in sorted(cats.items()) if c)
    print(f"check_obs: OK: {path}: {len(events)} events ({summary})")


def check_manifest(path, required_keys):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: not a flat JSON object")
    for key in required_keys:
        if key not in doc:
            fail(f"{path}: missing manifest key '{key}'")
    print(f"check_obs: OK: {path}: {len(doc)} manifest entries")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    mode, args = argv[1], argv[2:]
    if mode == "telemetry":
        check_telemetry(args)
    elif mode == "extents":
        check_extents(args[0], args[1] if len(args) > 1 else None)
    elif mode == "sketch":
        check_sketch(args[0])
    elif mode == "trace":
        check_trace(args[0], args[1:])
    elif mode == "manifest":
        check_manifest(args[0], args[1:])
    else:
        fail(f"unknown mode '{mode}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
