/**
 * @file
 * Figure 2: speedup of the eleven data-analysis workloads on 1/4/8
 * Hadoop slaves.
 *
 * Paper shape: 8-slave speedups range 3.3-8.2 (Naive Bayes at 6.6) --
 * wide enough to prove that no single data-analysis workload represents
 * the class. Compute-bound jobs (Bayes, Fuzzy K-means, IBCF) scale
 * best; I/O- and shuffle-bound jobs (Grep, Sort) flatten first.
 */

#include "bench_common.h"

#include "workloads/data_analysis.h"

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int
main()
{
    using namespace dcb;
    using util::format_double;

    mapreduce::ClusterSimulator sim;
    mapreduce::ClusterConfig cluster;

    util::Table table({"workload", "1 slave", "4 slaves", "8 slaves",
                       "8 slaves (paper)"});
    table.set_title("Figure 2: speedup vs one slave");
    util::CsvWriter csv({"workload", "slaves4", "slaves8", "paper8"});

    double lo = 100.0;
    double hi = 0.0;
    double bayes8 = 0.0;
    for (const std::string& name : workloads::data_analysis_names()) {
        const auto workload = workloads::make_workload(name);
        const auto& spec = workload->info().cluster_spec;
        const double s4 = sim.speedup(spec, cluster, 4);
        const double s8 = sim.speedup(spec, cluster, 8);
        double paper8 = -1.0;
        for (const auto& p : core::paper_speedups()) {
            if (p.name == name ||
                (name == "Hive-bench" && p.name == "hive-bench")) {
                paper8 = p.slaves8;
            }
        }
        table.add_row({name, "1.00", format_double(s4, 2),
                       format_double(s8, 2), format_double(paper8, 1)});
        csv.add_row({name, format_double(s4, 4), format_double(s8, 4),
                     format_double(paper8, 2)});
        lo = std::min(lo, s8);
        hi = std::max(hi, s8);
        if (name == "Naive Bayes")
            bayes8 = s8;
    }
    table.print();
    csv.write_file("fig02_speedup.csv");

    std::printf("\n8-slave speedups span %.1f-%.1f (paper 3.3-8.2); "
                "Naive Bayes %.1f (paper 6.6)\n\n",
                lo, hi, bayes8);
    core::shape_check("visible spread across workloads", hi - lo > 1.5);
    core::shape_check("no workload scales super-linearly", hi <= 8.0);
    core::shape_check("every workload gains from 8 slaves", lo > 2.0);
    core::shape_check("Naive Bayes lands mid-to-high range",
                      bayes8 > lo && bayes8 > 0.6 * hi);
    return 0;
}
