/**
 * @file
 * Figure 2: speedup of the eleven data-analysis workloads on 1/4/8
 * Hadoop slaves, extrapolated out to 16/32/64/128 slaves.
 *
 * Paper shape: 8-slave speedups range 3.3-8.2 (Naive Bayes at 6.6) --
 * wide enough to prove that no single data-analysis workload represents
 * the class. Compute-bound jobs (Bayes, Fuzzy K-means, IBCF) scale
 * best; I/O- and shuffle-bound jobs (Grep, Sort) flatten first.
 *
 * The 16-128-slave columns extend the paper's experiment with the same
 * model. Each curve flattens toward an effective Amdahl ceiling set by
 * the workload's serial residue plus its data-plane (shuffle/output)
 * share, so the per-workload spread widens with scale. EXPERIMENTS.md
 * fits 1/s(p) = f_eff + (1-f_eff)/p against these columns; f_eff
 * tracks, but exceeds, the configured serial_fraction.
 */

#include "bench_common.h"

#include "workloads/data_analysis.h"

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int
main()
{
    using namespace dcb;
    using util::format_double;

    mapreduce::ClusterSimulator sim;
    mapreduce::ClusterConfig cluster;

    util::Table table({"workload", "1 slave", "4 slaves", "8 slaves",
                       "8 slaves (paper)", "16", "32", "64", "128"});
    table.set_title("Figure 2: speedup vs one slave");
    util::CsvWriter csv({"workload", "slaves4", "slaves8", "paper8",
                         "slaves16", "slaves32", "slaves64",
                         "slaves128"});

    double lo = 100.0;
    double hi = 0.0;
    double bayes8 = 0.0;
    double lo128 = 1e9;
    double hi128 = 0.0;
    bool monotone = true;
    for (const std::string& name : workloads::data_analysis_names()) {
        const auto workload = workloads::make_workload(name);
        const auto& spec = workload->info().cluster_spec;
        const double s4 = sim.speedup(spec, cluster, 4);
        const double s8 = sim.speedup(spec, cluster, 8);
        const double s16 = sim.speedup(spec, cluster, 16);
        const double s32 = sim.speedup(spec, cluster, 32);
        const double s64 = sim.speedup(spec, cluster, 64);
        const double s128 = sim.speedup(spec, cluster, 128);
        double paper8 = -1.0;
        for (const auto& p : core::paper_speedups()) {
            if (p.name == name ||
                (name == "Hive-bench" && p.name == "hive-bench")) {
                paper8 = p.slaves8;
            }
        }
        table.add_row({name, "1.00", format_double(s4, 2),
                       format_double(s8, 2), format_double(paper8, 1),
                       format_double(s16, 2), format_double(s32, 2),
                       format_double(s64, 2), format_double(s128, 2)});
        csv.add_row({name, format_double(s4, 4), format_double(s8, 4),
                     format_double(paper8, 2), format_double(s16, 4),
                     format_double(s32, 4), format_double(s64, 4),
                     format_double(s128, 4)});
        lo = std::min(lo, s8);
        hi = std::max(hi, s8);
        lo128 = std::min(lo128, s128);
        hi128 = std::max(hi128, s128);
        monotone = monotone && s4 <= s8 && s8 <= s16 && s16 <= s32 &&
                   s32 <= s64 && s64 <= s128 && s128 < 128.0;
        // Parallel efficiency s(p)/p must fall as Amdahl + data-plane
        // contention bite: more slaves always help, each one less.
        monotone = monotone && s32 / 32.0 >= s64 / 64.0 &&
                   s64 / 64.0 >= s128 / 128.0;
        if (name == "Naive Bayes")
            bayes8 = s8;
    }
    table.print();
    csv.write_file("fig02_speedup.csv");

    std::printf("\n8-slave speedups span %.1f-%.1f (paper 3.3-8.2); "
                "Naive Bayes %.1f (paper 6.6); 128-slave span "
                "%.1f-%.1f\n\n",
                lo, hi, bayes8, lo128, hi128);
    core::shape_check("visible spread across workloads", hi - lo > 1.5);
    core::shape_check("no workload scales super-linearly", hi <= 8.0);
    core::shape_check("every workload gains from 8 slaves", lo > 2.0);
    core::shape_check("Naive Bayes lands mid-to-high range",
                      bayes8 > lo && bayes8 > 0.6 * hi);
    core::shape_check("extended curves are monotone with falling "
                      "parallel efficiency",
                      monotone);
    core::shape_check("the spread widens with scale (Amdahl bites "
                      "unevenly)",
                      hi128 - lo128 > hi - lo);
    return 0;
}
