/**
 * @file
 * Ablation: LLC capacity sweep behind the Section IV-D implication that
 * "optimizing the LLC capacity properly will improve the
 * energy-efficiency of processor and save the die area".
 *
 * Sweeps the L3 from 3 MB to 24 MB under a representative data-analysis
 * workload and a service model, reporting the L3 service ratio
 * (Equation 1): the knee shows how much capacity those workloads
 * actually use.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'500'000;

    util::Table table({"L3 size", "PageRank L3 ratio",
                       "PageRank L2->mem MPKI", "Web Serving L3 ratio"});
    table.set_title("ablation: L3 capacity sweep (Equation 1 ratio)");

    for (std::uint64_t mb : {3, 6, 12, 24}) {
        core::HarnessConfig config = core::bench_config();
        config.run.op_budget = budget;
        config.run.warmup_ops = budget / 4;
        config.memory_config.l3.size_bytes = mb << 20;
        const auto pr = core::run_workload("PageRank", config).report;
        const auto web =
            core::run_workload("Web Serving", config).report;
        table.add_row(
            {std::to_string(mb) + " MB",
             util::format_double(100 * pr.l3_service_ratio, 1) + "%",
             util::format_double(pr.l2_mpki * (1 - pr.l3_service_ratio),
                                 1),
             util::format_double(100 * web.l3_service_ratio, 1) + "%"});
    }
    table.print();
    std::printf("\nReading: once the L3 covers the hot working set, extra"
                "\ncapacity buys little -- the paper's die-area argument.\n");
    return 0;
}
