/**
 * @file
 * Figure 8: ITLB-miss completed page walks per thousand instructions.
 *
 * Paper shape: follows the instruction-footprint trend of Figure 7:
 * data-analysis above SPEC/HPCC, some services above data analysis,
 * Naive Bayes near zero. Absolute walk rates run higher than the
 * paper's (see EXPERIMENTS.md on TLB scale).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 8: ITLB-miss completed page walks per thousand instructions", reports, "ITLB walks PKI",
        [](const cpu::CounterReport& r) { return r.itlb_walk_pki; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return m.itlb_walk_pki;
        }),
        3, "fig08_itlb.csv", cpu::ReportMetric::kItlbWalkPki);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.itlb_walk_pki; });
    const double hpcc = bench::category_average(
        reports, workloads::Category::kHpcc,
        [](const auto& r) { return r.itlb_walk_pki; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.itlb_walk_pki; });
    double bayes = 1e9;
    for (const auto& r : reports)
        if (r.workload == "Naive Bayes")
            bayes = r.itlb_walk_pki;
    core::shape_check("DA above HPCC", da > hpcc);
    core::shape_check("services above DA", svc > da);
    core::shape_check("Naive Bayes near the bottom", bayes < da / 2);
    return 0;
}
