/**
 * @file
 * Figure 3: instructions per cycle for each workload.
 *
 * Paper shape: service workloads (CloudSuite's four + SPECweb) all below
 * 0.6; the eleven data-analysis workloads range 0.52-0.95 (avg 0.78,
 * Naive Bayes lowest); HPL and DGEMM near 1.2 at the top; STREAM below
 * 0.5.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 3: Instructions per cycle (IPC)", reports, "IPC",
        [](const cpu::CounterReport& r) { return r.ipc; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return m.ipc;
        }),
        2, "fig03_ipc.csv", cpu::ReportMetric::kIpc);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.ipc; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.ipc; });
    double dgemm = 0.0;
    double bayes = 0.0;
    double da_min = 100.0;
    double da_max = 0.0;
    for (const auto& r : reports) {
        if (r.workload == "HPCC-DGEMM")
            dgemm = r.ipc;
        if (r.workload == "Naive Bayes")
            bayes = r.ipc;
    }
    for (const auto& name : workloads::names_in_category(
             workloads::Category::kDataAnalysis)) {
        for (const auto& r : reports) {
            if (r.workload == name) {
                da_min = std::min(da_min, r.ipc);
                da_max = std::max(da_max, r.ipc);
            }
        }
    }

    std::printf("data-analysis IPC: avg %.2f (paper 0.78), range "
                "%.2f-%.2f (paper 0.52-0.95)\n\n",
                da, da_min, da_max);
    core::shape_check("DA average IPC above the service average", da > svc);
    core::shape_check("compute-bound HPCC (DGEMM) tops the chart",
                      dgemm > da_max);
    core::shape_check("Naive Bayes near the bottom of the DA range",
                      bayes < da);
    core::shape_check("services below the DA class", svc < da_min + 0.2);
    return 0;
}
