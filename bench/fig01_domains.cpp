/**
 * @file
 * Figure 1: top-site category shares (the Alexa-derived survey that
 * selects the three application domains the workloads are drawn from).
 */

#include <cstdio>

#include "core/domain_catalog.h"
#include "util/string_util.h"
#include "util/table.h"

int
main()
{
    using namespace dcb;
    util::Table table({"domain", "share of top sites"});
    table.set_title("Figure 1: top sites in the web by category");
    for (const auto& share : core::domain_shares()) {
        table.add_row({share.domain,
                       util::format_double(100.0 * share.share, 0) + "%"});
    }
    table.print();
    std::printf("\nThe top three domains (search engine, social network,"
                "\nelectronic commerce) motivate the workload selection;\n"
                "see tab2_scenarios for the workload/domain matrix.\n");
    return 0;
}
