/**
 * @file
 * Interval-sampling accuracy and throughput bench: runs the full suite
 * twice on one thread -- exact, then sampled -- and reports the
 * suite speedup plus the relative error of every fig03-fig12 metric for
 * every workload, writing the numbers to BENCH_sampling.json.
 *
 * Usage: ./bench_sampling [--ops N] [--sample=ratio] [--sample-window N]
 *                         [--check-speedup X] [--check-rel-err Y]
 *
 * With --check-speedup / --check-rel-err the process exits nonzero when
 * the sampled run is slower than X times exact or any metric's relative
 * error exceeds Y (CI guard).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/atomic_file.h"

namespace {

using namespace dcb;
using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Relative error with an absolute floor: metrics that are legitimately
 * near zero (e.g. ITLB walks PKI ~0.01) would otherwise turn a
 * negligible absolute difference into a huge relative one.
 */
constexpr double kRelErrFloor = 0.02;

double
rel_err(double sampled, double exact)
{
    return std::fabs(sampled - exact) /
           std::max(std::fabs(exact), kRelErrFloor);
}

}  // namespace

int
main(int argc, char** argv)
{
    // Split off the check flags before the shared parser sees them (it
    // treats unknown tokens as the legacy positional budget).
    double check_speedup = -1.0;
    double check_rel_err = -1.0;
    bool dump = false;
    std::vector<char*> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump") == 0)
            dump = true;
        else if (std::strcmp(argv[i], "--check-speedup") == 0 && i + 1 < argc)
            check_speedup = std::strtod(argv[++i], nullptr);
        else if (std::strncmp(argv[i], "--check-speedup=", 16) == 0)
            check_speedup = std::strtod(argv[i] + 16, nullptr);
        else if (std::strcmp(argv[i], "--check-rel-err") == 0 &&
                 i + 1 < argc)
            check_rel_err = std::strtod(argv[++i], nullptr);
        else if (std::strncmp(argv[i], "--check-rel-err=", 16) == 0)
            check_rel_err = std::strtod(argv[i] + 16, nullptr);
        else
            pass.push_back(argv[i]);
    }

    core::HarnessConfig sampled_config = bench::config_from_args(
        static_cast<int>(pass.size()), pass.data());
    if (!sampled_config.sampling.enabled())
        sampled_config.sampling.ratio =
            sampled_config.sampling.full_warming
                ? bench::kDefaultFullSampleRatio
                : bench::kDefaultSampleRatio;
    sampled_config.jobs = 1;  // single-thread: measure substrate speedup

    core::HarnessConfig exact_config = sampled_config;
    exact_config.sampling = sample::SamplePlan{};

    const sample::IntervalLayout resolved = sample::resolve_layout(
        sampled_config.sampling, sampled_config.run.op_budget,
        sampled_config.run.warmup_ops);
    // The default ratio and jobs pin happen after config_from_args
    // filled the manifest; re-stamp the effective values.
    bench::manifest().set("jobs", std::uint64_t{1});
    bench::manifest().set("sampling_enabled", true);
    bench::manifest().set("sampling_ratio", sampled_config.sampling.ratio);
    bench::manifest().set("sampling_window_ops",
                          static_cast<std::uint64_t>(resolved.window_ops));
    bench::manifest().set("sampling_full_warming",
                          sampled_config.sampling.full_warming);
    const std::vector<std::string> names = workloads::figure_order();
    std::printf("sampling accuracy bench: %zu workloads, %llu ops each, "
                "ratio %.3f, window %llu ops, %s warming\n\n",
                names.size(),
                static_cast<unsigned long long>(
                    sampled_config.run.op_budget),
                sampled_config.sampling.ratio,
                static_cast<unsigned long long>(resolved.window_ops),
                sampled_config.sampling.full_warming ? "full" : "bridge");

    const auto exact_start = Clock::now();
    const core::SuiteResult exact_suite =
        core::run_suite(names, exact_config);
    const double exact_seconds = seconds_since(exact_start);

    const auto sampled_start = Clock::now();
    const core::SuiteResult sampled_suite =
        core::run_suite(names, sampled_config);
    const double sampled_seconds = seconds_since(sampled_start);

    const double speedup =
        sampled_seconds > 0.0 ? exact_seconds / sampled_seconds : 0.0;
    std::printf("exact suite:   %.3f s\n", exact_seconds);
    std::printf("sampled suite: %.3f s  (speedup %.2fx)\n\n",
                sampled_seconds, speedup);

    // --- Per-metric relative error over all workloads -------------------
    struct MetricErr
    {
        double max_err = 0.0;
        double sum_err = 0.0;
        std::size_t n = 0;
        std::string worst_workload;
    };
    std::vector<MetricErr> errs(cpu::kReportMetricCount);
    struct WorkloadErr
    {
        std::string name;
        double max_err = 0.0;
        std::string worst_metric;
        std::size_t windows = 0;
    };
    std::vector<WorkloadErr> per_workload;

    for (std::size_t i = 0; i < names.size(); ++i) {
        if (!exact_suite.runs[i].status.ok ||
            !sampled_suite.runs[i].status.ok) {
            std::fprintf(stderr, "warning: %s skipped (failed run)\n",
                         names[i].c_str());
            continue;
        }
        const cpu::CounterReport& e = exact_suite.runs[i].report;
        const cpu::CounterReport& s = sampled_suite.runs[i].report;
        WorkloadErr w;
        w.name = names[i];
        w.windows = s.sample_windows;
        for (std::size_t m = 0; m < cpu::kReportMetricCount; ++m) {
            const auto metric = static_cast<cpu::ReportMetric>(m);
            const double err = rel_err(cpu::report_metric(s, metric),
                                       cpu::report_metric(e, metric));
            if (dump && err > 0.03)
                std::printf("  dump %-20s %-28s exact %.5f sampled %.5f "
                            "+-%.5f (err %.1f%%)\n",
                            names[i].c_str(),
                            cpu::report_metric_name(metric),
                            cpu::report_metric(e, metric),
                            cpu::report_metric(s, metric), s.metric_stderr[m],
                            100.0 * err);
            errs[m].sum_err += err;
            ++errs[m].n;
            if (err > errs[m].max_err) {
                errs[m].max_err = err;
                errs[m].worst_workload = names[i];
            }
            if (err > w.max_err) {
                w.max_err = err;
                w.worst_metric = cpu::report_metric_name(metric);
            }
        }
        per_workload.push_back(w);
    }

    double overall_max = 0.0;
    std::string overall_worst;
    std::printf("%-28s %12s %12s  %s\n", "metric", "max rel err",
                "mean rel err", "worst workload");
    for (std::size_t m = 0; m < cpu::kReportMetricCount; ++m) {
        const auto metric = static_cast<cpu::ReportMetric>(m);
        const double mean =
            errs[m].n ? errs[m].sum_err / static_cast<double>(errs[m].n)
                      : 0.0;
        std::printf("%-28s %11.2f%% %11.2f%%  %s\n",
                    cpu::report_metric_name(metric),
                    100.0 * errs[m].max_err, 100.0 * mean,
                    errs[m].worst_workload.c_str());
        if (errs[m].max_err > overall_max) {
            overall_max = errs[m].max_err;
            overall_worst = std::string(cpu::report_metric_name(metric)) +
                            " @ " + errs[m].worst_workload;
        }
    }
    std::printf("\noverall max rel err: %.2f%% (%s)\n", 100.0 * overall_max,
                overall_worst.c_str());

    // --- JSON dump ------------------------------------------------------
    const char* json_path = "BENCH_sampling.json";
    std::string json_temp;
    if (std::FILE* f = util::open_file_atomic(json_path, &json_temp)) {
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"op_budget\": %llu,\n",
                     static_cast<unsigned long long>(
                         sampled_config.run.op_budget));
        std::fprintf(f, "  \"sample_ratio\": %.4f,\n",
                     sampled_config.sampling.ratio);
        std::fprintf(f, "  \"sample_window_ops\": %llu,\n",
                     static_cast<unsigned long long>(resolved.window_ops));
        std::fprintf(f, "  \"full_warming\": %s,\n",
                     sampled_config.sampling.full_warming ? "true"
                                                          : "false");
        std::fprintf(f, "  \"exact_seconds\": %.6f,\n", exact_seconds);
        std::fprintf(f, "  \"sampled_seconds\": %.6f,\n", sampled_seconds);
        std::fprintf(f, "  \"suite_speedup\": %.4f,\n", speedup);
        std::fprintf(f, "  \"overall_max_rel_err\": %.6f,\n", overall_max);
        std::fprintf(f, "  \"metrics\": [\n");
        for (std::size_t m = 0; m < cpu::kReportMetricCount; ++m) {
            const auto metric = static_cast<cpu::ReportMetric>(m);
            const double mean =
                errs[m].n
                    ? errs[m].sum_err / static_cast<double>(errs[m].n)
                    : 0.0;
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"max_rel_err\": %.6f, "
                         "\"mean_rel_err\": %.6f, "
                         "\"worst_workload\": \"%s\"}%s\n",
                         cpu::report_metric_name(metric), errs[m].max_err,
                         mean, errs[m].worst_workload.c_str(),
                         m + 1 < cpu::kReportMetricCount ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"workloads\": [\n");
        for (std::size_t i = 0; i < per_workload.size(); ++i) {
            const WorkloadErr& w = per_workload[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"max_rel_err\": %.6f, "
                         "\"worst_metric\": \"%s\", \"windows\": %zu}%s\n",
                         w.name.c_str(), w.max_err, w.worst_metric.c_str(),
                         w.windows, i + 1 < per_workload.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"manifest\": %s\n",
                     bench::manifest().json_fragment(2).c_str());
        std::fprintf(f, "}\n");
        if (!util::commit_file_atomic(f, json_temp, json_path)) {
            std::fprintf(stderr, "error: cannot write %s\n", json_path);
            return 1;
        }
        std::printf("wrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "error: cannot write %s\n", json_path);
        return 1;
    }

    // --- CI guards ------------------------------------------------------
    int rc = 0;
    if (check_speedup > 0.0 && speedup < check_speedup) {
        std::fprintf(stderr,
                     "FAIL: speedup %.2fx below required %.2fx\n", speedup,
                     check_speedup);
        rc = 1;
    }
    if (check_rel_err > 0.0 && overall_max > check_rel_err) {
        std::fprintf(stderr,
                     "FAIL: max rel err %.2f%% above allowed %.2f%%\n",
                     100.0 * overall_max, 100.0 * check_rel_err);
        rc = 1;
    }
    return rc;
}
