/**
 * @file
 * Ablation: does binary size drive the front-end pressure? (Section
 * IV-C's claim that high-level languages and third-party libraries
 * enlarge the binary and aggravate L1I/ITLB inefficiency.)
 *
 * Runs the same analytics workload with its JVM-scale code layout versus
 * an HPCC-style tight-kernel layout. Everything else (algorithm, data,
 * machine) is identical, so the L1I/ITLB difference isolates the
 * footprint effect.
 */

#include <cstdio>

#include "bench_common.h"
#include "datagen/text.h"
#include "analytics/word_count.h"
#include "os/syscalls.h"
#include "trace/exec_ctx.h"
#include "util/table.h"
#include "util/string_util.h"
#include "workloads/profiles.h"

namespace {

dcb::cpu::CounterReport
run_wordcount_with_layout(dcb::workloads::FootprintClass footprint,
                          const char* label, std::uint64_t budget)
{
    using namespace dcb;
    cpu::Core core(cpu::westmere_core_config(),
                   mem::westmere_memory_config());
    trace::ExecCtx ctx(
        core, workloads::make_code_layout(footprint,
                                          workloads::kUserCodeBase, 42),
        os::kernel_code_layout(workloads::kKernelCodeBase, 43),
        workloads::data_analysis_exec_profile(), 42);
    mem::AddressSpace space;
    datagen::TextGenerator text(30'000, 1.0, 44);
    analytics::WordCounter counter(ctx, space, 1 << 16);
    core.set_counter_reset_at(budget / 4);
    while (ctx.counts().total() < budget)
        counter.add_document(text.next_document(120).words);
    return cpu::make_report(label, core);
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace dcb;
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

    const auto jvm = run_wordcount_with_layout(
        workloads::FootprintClass::kJvmFramework, "jvm-scale binary",
        budget);
    const auto tight = run_wordcount_with_layout(
        workloads::FootprintClass::kTightKernel, "tight kernel binary",
        budget);

    util::Table table({"layout", "L1I MPKI", "ITLB walks PKI",
                       "fetch-stall share", "IPC"});
    table.set_title("ablation: identical WordCount, different binaries");
    for (const auto& r : {jvm, tight}) {
        table.add_row({r.workload, util::format_double(r.l1i_mpki, 2),
                       util::format_double(r.itlb_walk_pki, 4),
                       util::format_double(100 * r.stalls.fetch, 0) + "%",
                       util::format_double(r.ipc, 2)});
    }
    table.print();
    std::printf("\n");
    core::shape_check("large binary => order-of-magnitude more L1I misses",
                      jvm.l1i_mpki > 10 * tight.l1i_mpki);
    core::shape_check("large binary => more ITLB walks",
                      jvm.itlb_walk_pki > tight.itlb_walk_pki);
    core::shape_check("large binary => lower IPC", jvm.ipc < tight.ipc);
    return 0;
}
