#ifndef DCBENCH_BENCH_BENCH_COMMON_H_
#define DCBENCH_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the per-figure bench binaries: a full-suite run
 * with the paper's methodology (Table III machine, ramp-up discard,
 * whole-runtime collection) and helpers to print paper-vs-measured rows.
 *
 * Usage of every figure bench:  ./figNN_xxx [ops-per-workload] [--jobs N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dcbench.h"

namespace dcb::bench {

/** Default per-workload op budget for figure benches. */
inline constexpr std::uint64_t kDefaultBudget = 2'000'000;

/**
 * Parse the optional op-budget argument and a `--jobs N` flag
 * (N = 0 means one worker per hardware thread). Workloads are
 * independent simulations, so results do not depend on N.
 */
inline core::HarnessConfig
config_from_args(int argc, char** argv)
{
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = kDefaultBudget;
    bool budget_seen = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else if (!budget_seen) {
            config.run.op_budget = std::strtoull(argv[i], nullptr, 10);
            budget_seen = true;
        }
    }
    config.run.warmup_ops = config.run.op_budget / 4;
    return config;
}

/** Surface per-workload failures without aborting the bench. */
inline std::vector<cpu::CounterReport>
reports_or_warn(const core::SuiteResult& suite)
{
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        if (!suite.runs[i].status.ok)
            std::fprintf(stderr, "warning: %s skipped: %s\n",
                         suite.names[i].c_str(),
                         suite.runs[i].status.error.c_str());
    }
    return suite.reports();
}

/** Run the full 26-workload suite in figure order. */
inline std::vector<cpu::CounterReport>
run_full_suite(const core::HarnessConfig& config)
{
    std::printf("running %zu workloads at %llu ops each "
                "(warmup %llu discarded)...\n\n",
                workloads::figure_order().size(),
                static_cast<unsigned long long>(config.run.op_budget),
                static_cast<unsigned long long>(config.run.warmup_ops));
    return reports_or_warn(
        core::run_suite(workloads::figure_order(), config));
}

/** Run only the eleven data-analysis workloads (Table I order). */
inline std::vector<cpu::CounterReport>
run_data_analysis_suite(const core::HarnessConfig& config)
{
    return reports_or_warn(core::run_suite(
        workloads::names_in_category(workloads::Category::kDataAnalysis),
        config));
}

/** Paper lookup for a metric field (negative if unavailable). */
template <typename Getter>
core::PaperGetter
paper_field(Getter getter)
{
    return [getter](const std::string& name) {
        const auto m = core::paper_metrics(name);
        return m ? getter(*m) : -1.0;
    };
}

/** Average of a measured metric over a category. */
inline double
category_average(const std::vector<cpu::CounterReport>& reports,
                 workloads::Category category,
                 const core::MetricGetter& metric)
{
    return core::class_average(reports,
                               workloads::names_in_category(category),
                               metric);
}

}  // namespace dcb::bench

#endif  // DCBENCH_BENCH_BENCH_COMMON_H_
