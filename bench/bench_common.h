#ifndef DCBENCH_BENCH_BENCH_COMMON_H_
#define DCBENCH_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the per-figure bench binaries: a full-suite run
 * with the paper's methodology (Table III machine, ramp-up discard,
 * whole-runtime collection) and helpers to print paper-vs-measured rows.
 *
 * Usage of every figure bench:
 *   ./figNN_xxx [ops-per-workload] [--ops N] [--jobs N]
 *               [--sample[=ratio]] [--sample-window N] [--sample-warm N]
 *               [--sample-discard N] [--sample-warmup N] [--sample-full]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dcbench.h"

namespace dcb::bench {

/** Default per-workload op budget for figure benches. */
inline constexpr std::uint64_t kDefaultBudget = 2'000'000;

/** Ratio used by a bare `--sample` flag (bridge warming: speed). */
inline constexpr double kDefaultSampleRatio = 0.02;

/**
 * Ratio used by a bare `--sample` under `--sample-full`: full warming
 * targets fidelity, and the stall-share estimates need the denser
 * window coverage far more than they need the (already modest) extra
 * speed.
 */
inline constexpr double kDefaultFullSampleRatio = 0.15;

/**
 * Parse the shared bench flags:
 *   --ops N            per-workload op budget (also legacy positional N)
 *   --jobs N           suite worker threads (0 = one per hardware thread)
 *   --sample[=ratio]   interval sampling at `ratio` detailed coverage
 *   --sample-window N  detailed-window length in ops
 *   --sample-warm N    functional-warming ops before each window
 *   --sample-discard N per-window pipeline re-pressurization head
 *   --sample-warmup N  lead-in before the first period
 *   --sample-full      full warming: structure metrics near-exact,
 *                      slower (gaps warm instead of skipping)
 * Workloads are independent simulations, so results do not depend on
 * the jobs count. Prints the resolved budget so every bench states what
 * it actually ran.
 */
inline core::HarnessConfig
config_from_args(int argc, char** argv)
{
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = kDefaultBudget;
    bool budget_seen = false;
    bool default_ratio = false;  // bare --sample: mode-appropriate ratio
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            config.run.op_budget = std::strtoull(argv[++i], nullptr, 10);
            budget_seen = true;
        } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
            config.run.op_budget =
                std::strtoull(argv[i] + 6, nullptr, 10);
            budget_seen = true;
        } else if (std::strcmp(argv[i], "--sample") == 0) {
            default_ratio = true;
            config.sampling.ratio = kDefaultSampleRatio;
        } else if (std::strncmp(argv[i], "--sample=", 9) == 0) {
            default_ratio = false;
            config.sampling.ratio = std::strtod(argv[i] + 9, nullptr);
        } else if (std::strcmp(argv[i], "--sample-window") == 0 &&
                   i + 1 < argc) {
            config.sampling.window_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-window=", 16) == 0) {
            config.sampling.window_ops =
                std::strtoull(argv[i] + 16, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-warm") == 0 &&
                   i + 1 < argc) {
            config.sampling.warm_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-warm=", 14) == 0) {
            config.sampling.warm_ops =
                std::strtoull(argv[i] + 14, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-discard") == 0 &&
                   i + 1 < argc) {
            config.sampling.window_discard_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-discard=", 17) == 0) {
            config.sampling.window_discard_ops =
                std::strtoull(argv[i] + 17, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-full") == 0) {
            config.sampling.full_warming = true;
        } else if (std::strcmp(argv[i], "--sample-warmup") == 0 &&
                   i + 1 < argc) {
            config.sampling.warmup_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-warmup=", 16) == 0) {
            config.sampling.warmup_ops =
                std::strtoull(argv[i] + 16, nullptr, 10);
        } else if (!budget_seen) {
            config.run.op_budget = std::strtoull(argv[i], nullptr, 10);
            budget_seen = true;
        }
    }
    if (default_ratio && config.sampling.full_warming)
        config.sampling.ratio = kDefaultFullSampleRatio;
    config.run.warmup_ops = config.run.op_budget / 4;
    std::printf("op budget: %llu ops per workload",
                static_cast<unsigned long long>(config.run.op_budget));
    if (config.sampling.enabled()) {
        const sample::IntervalLayout resolved = sample::resolve_layout(
            config.sampling, config.run.op_budget, config.run.warmup_ops);
        std::printf("; sampling ratio %.3f, window %llu ops, "
                    "warm %s\n",
                    config.sampling.ratio,
                    static_cast<unsigned long long>(resolved.window_ops),
                    config.sampling.full_warming
                        ? "full"
                        : std::to_string(config.sampling.warm_ops)
                              .c_str());
    }
    else
        std::printf("; exact (no sampling)\n");
    return config;
}

/** Surface per-workload failures without aborting the bench. */
inline std::vector<cpu::CounterReport>
reports_or_warn(const core::SuiteResult& suite)
{
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        if (!suite.runs[i].status.ok)
            std::fprintf(stderr, "warning: %s skipped: %s\n",
                         suite.names[i].c_str(),
                         suite.runs[i].status.error.c_str());
    }
    return suite.reports();
}

/** Run the full 26-workload suite in figure order. */
inline std::vector<cpu::CounterReport>
run_full_suite(const core::HarnessConfig& config)
{
    std::printf("running %zu workloads at %llu ops each "
                "(warmup %llu discarded)...\n\n",
                workloads::figure_order().size(),
                static_cast<unsigned long long>(config.run.op_budget),
                static_cast<unsigned long long>(config.run.warmup_ops));
    return reports_or_warn(
        core::run_suite(workloads::figure_order(), config));
}

/** Run only the eleven data-analysis workloads (Table I order). */
inline std::vector<cpu::CounterReport>
run_data_analysis_suite(const core::HarnessConfig& config)
{
    return reports_or_warn(core::run_suite(
        workloads::names_in_category(workloads::Category::kDataAnalysis),
        config));
}

/** Paper lookup for a metric field (negative if unavailable). */
template <typename Getter>
core::PaperGetter
paper_field(Getter getter)
{
    return [getter](const std::string& name) {
        const auto m = core::paper_metrics(name);
        return m ? getter(*m) : -1.0;
    };
}

/** Average of a measured metric over a category. */
inline double
category_average(const std::vector<cpu::CounterReport>& reports,
                 workloads::Category category,
                 const core::MetricGetter& metric)
{
    return core::class_average(reports,
                               workloads::names_in_category(category),
                               metric);
}

}  // namespace dcb::bench

#endif  // DCBENCH_BENCH_BENCH_COMMON_H_
