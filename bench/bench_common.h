#ifndef DCBENCH_BENCH_BENCH_COMMON_H_
#define DCBENCH_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the per-figure bench binaries: a full-suite run
 * with the paper's methodology (Table III machine, ramp-up discard,
 * whole-runtime collection) and helpers to print paper-vs-measured rows.
 *
 * Usage of every figure bench:
 *   ./figNN_xxx [ops-per-workload] [--ops N] [--jobs N]
 *               [--sample[=ratio]] [--sample-window N] [--sample-warm N]
 *               [--sample-discard N] [--sample-warmup N] [--sample-full]
 *               [--obs-interval N] [--obs-out PREFIX]
 *               [--obs-extent-rows N]
 *               [--obs-metrics-out FILE] [--obs-phase[=FILE]]
 *               [--trace-out FILE] [--manifest FILE]
 */

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/dcbench.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"

namespace dcb::bench {

/**
 * Process-wide observability sinks, created on demand by the shared
 * --trace-out / --manifest / --obs-metrics-out / --obs-phase flags and
 * flushed once at process exit so a bench's every exit path (including
 * the CI-guard `return 1`s) still writes the files.
 */
struct ObsSinks
{
    std::unique_ptr<obs::TraceWriter> trace;
    std::string trace_path;
    obs::RunManifest manifest;
    std::string manifest_path;
    /** --obs-metrics-out: labeled registry whose Prometheus text lands
        in metrics_path and whose snapshot rows spill to
        metrics_path + ".dcx" (both atomic, written at exit). */
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::string metrics_path;
    /** --obs-phase=FILE: per-workload phase segmentation JSON. */
    std::string phase_path;
    bool flush_registered = false;
};

inline ObsSinks&
obs_sinks()
{
    static ObsSinks sinks;
    return sinks;
}

/**
 * The run manifest config_from_args fills with the effective
 * configuration. Benches embed it into their BENCH_*.json artifacts
 * (json_fragment) and may stamp extra facts before exit.
 */
inline obs::RunManifest&
manifest()
{
    return obs_sinks().manifest;
}

/** The --trace-out collector, nullptr when tracing is off. */
inline obs::TraceWriter*
trace_writer()
{
    return obs_sinks().trace.get();
}

/** The --obs-metrics-out registry, nullptr when metrics are off. */
inline obs::MetricsRegistry*
metrics_registry()
{
    return obs_sinks().metrics.get();
}

/** atexit hook: write trace, manifest and metrics files if requested. */
inline void
flush_obs_sinks()
{
    ObsSinks& sinks = obs_sinks();
    if (sinks.trace != nullptr && !sinks.trace_path.empty()) {
        if (sinks.trace->write(sinks.trace_path))
            std::printf("wrote %s (%zu trace events)\n",
                        sinks.trace_path.c_str(), sinks.trace->size());
        else
            std::fprintf(stderr, "error: cannot write %s\n",
                         sinks.trace_path.c_str());
    }
    if (sinks.metrics != nullptr && !sinks.metrics_path.empty()) {
        if (!sinks.metrics->finalize_snapshots())
            std::fprintf(stderr, "error: cannot write %s.dcx\n",
                         sinks.metrics_path.c_str());
        if (sinks.metrics->write_prometheus(sinks.metrics_path))
            std::printf("wrote %s (%zu series, %llu snapshots)\n",
                        sinks.metrics_path.c_str(),
                        sinks.metrics->series_count(),
                        static_cast<unsigned long long>(
                            sinks.metrics->snapshot_count()));
        else
            std::fprintf(stderr, "error: cannot write %s\n",
                         sinks.metrics_path.c_str());
    }
    if (!sinks.manifest_path.empty()) {
        if (sinks.manifest.write(sinks.manifest_path))
            std::printf("wrote %s\n", sinks.manifest_path.c_str());
        else
            std::fprintf(stderr, "error: cannot write %s\n",
                         sinks.manifest_path.c_str());
    }
}

/**
 * Stamp a parallel suite's worker utilization into the run manifest:
 * aggregate busy time, slot utilization, and the load-imbalance spread
 * (max/min busy worker), next to the host facts. The cluster bench
 * reports the analogous per-shard numbers in BENCH_cluster.json.
 */
inline void
stamp_pool_stats(const core::SuiteResult& suite)
{
    obs::RunManifest& m = manifest();
    m.set("pool_busy_seconds", suite.pool_busy_seconds);
    m.set("pool_utilization", suite.pool_utilization);
    m.set("pool_workers", std::uint64_t{suite.worker_tasks.size()});
    double busy_min = 0.0;
    double busy_max = 0.0;
    for (std::size_t i = 0; i < suite.worker_busy_seconds.size(); ++i) {
        const double b = suite.worker_busy_seconds[i];
        busy_min = i == 0 ? b : std::min(busy_min, b);
        busy_max = std::max(busy_max, b);
    }
    if (busy_min > 0.0)
        m.set("pool_imbalance", busy_max / busy_min);
}

/**
 * Peak resident-set size of this process in bytes (getrusage; Linux
 * reports ru_maxrss in KiB). The benches record it next to recorder
 * byte counts so telemetry memory regressions show up in BENCH_*.json.
 */
inline std::uint64_t
peak_rss_bytes()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

/** Default per-workload op budget for figure benches. */
inline constexpr std::uint64_t kDefaultBudget = 2'000'000;

/** Ratio used by a bare `--sample` flag (bridge warming: speed). */
inline constexpr double kDefaultSampleRatio = 0.02;

/**
 * Ratio used by a bare `--sample` under `--sample-full`: full warming
 * targets fidelity, and the stall-share estimates need the denser
 * window coverage far more than they need the (already modest) extra
 * speed.
 */
inline constexpr double kDefaultFullSampleRatio = 0.15;

/**
 * Parse the shared bench flags:
 *   --ops N            per-workload op budget (also legacy positional N)
 *   --jobs N           suite worker threads (0 = one per hardware thread)
 *   --sample[=ratio]   interval sampling at `ratio` detailed coverage
 *   --sample-window N  detailed-window length in ops
 *   --sample-warm N    functional-warming ops before each window
 *   --sample-discard N per-window pipeline re-pressurization head
 *   --sample-warmup N  lead-in before the first period
 *   --sample-full      full warming: structure metrics near-exact,
 *                      slower (gaps warm instead of skipping)
 *   --obs-interval N   interval telemetry: snapshot every counter every
 *                      N retired ops (perf stat -I analogue); writes
 *                      <prefix><workload>.telemetry.{csv,json}
 *   --obs-out PREFIX   telemetry file prefix (default "obs/";
 *                      --obs-out= keeps telemetry in memory only)
 *   --obs-extent-rows N  rows buffered per columnar telemetry extent
 *                      before sealing to the .dcx spill file (0 keeps
 *                      every row in memory; default 4096)
 *   --obs-metrics-out FILE  labeled metrics registry: Prometheus text
 *                      to FILE, snapshot time series to FILE.dcx (both
 *                      written atomically at process exit)
 *   --obs-phase[=FILE] detect phases over the interval telemetry
 *                      (requires --obs-interval); with =FILE also
 *                      write the per-workload segmentation JSON
 *   --trace-out FILE   collect a Chrome trace-event / Perfetto JSON
 *                      timeline of the whole process into FILE
 *   --manifest FILE    write the run manifest (config echo, seeds,
 *                      build type, host parallelism) to FILE
 * Workloads are independent simulations, so results do not depend on
 * the jobs count. Prints the resolved budget so every bench states what
 * it actually ran. The manifest is always populated (see manifest());
 * trace and manifest files are flushed at process exit.
 */
inline core::HarnessConfig
config_from_args(int argc, char** argv)
{
    core::HarnessConfig config = core::bench_config();
    config.run.op_budget = kDefaultBudget;
    bool budget_seen = false;
    bool default_ratio = false;  // bare --sample: mode-appropriate ratio
    bool obs_out_seen = false;
    ObsSinks& sinks = obs_sinks();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            config.run.op_budget = std::strtoull(argv[++i], nullptr, 10);
            budget_seen = true;
        } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
            config.run.op_budget =
                std::strtoull(argv[i] + 6, nullptr, 10);
            budget_seen = true;
        } else if (std::strcmp(argv[i], "--sample") == 0) {
            default_ratio = true;
            config.sampling.ratio = kDefaultSampleRatio;
        } else if (std::strncmp(argv[i], "--sample=", 9) == 0) {
            default_ratio = false;
            config.sampling.ratio = std::strtod(argv[i] + 9, nullptr);
        } else if (std::strcmp(argv[i], "--sample-window") == 0 &&
                   i + 1 < argc) {
            config.sampling.window_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-window=", 16) == 0) {
            config.sampling.window_ops =
                std::strtoull(argv[i] + 16, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-warm") == 0 &&
                   i + 1 < argc) {
            config.sampling.warm_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-warm=", 14) == 0) {
            config.sampling.warm_ops =
                std::strtoull(argv[i] + 14, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-discard") == 0 &&
                   i + 1 < argc) {
            config.sampling.window_discard_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-discard=", 17) == 0) {
            config.sampling.window_discard_ops =
                std::strtoull(argv[i] + 17, nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-full") == 0) {
            config.sampling.full_warming = true;
        } else if (std::strcmp(argv[i], "--sample-warmup") == 0 &&
                   i + 1 < argc) {
            config.sampling.warmup_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--sample-warmup=", 16) == 0) {
            config.sampling.warmup_ops =
                std::strtoull(argv[i] + 16, nullptr, 10);
        } else if (std::strcmp(argv[i], "--obs-interval") == 0 &&
                   i + 1 < argc) {
            config.telemetry.interval_ops =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--obs-interval=", 15) == 0) {
            config.telemetry.interval_ops =
                std::strtoull(argv[i] + 15, nullptr, 10);
        } else if (std::strcmp(argv[i], "--obs-extent-rows") == 0 &&
                   i + 1 < argc) {
            config.telemetry.extent_rows = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(argv[i], "--obs-extent-rows=", 18) == 0) {
            config.telemetry.extent_rows = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 18, nullptr, 10));
        } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            config.telemetry.out_path = argv[++i];
            obs_out_seen = true;
        } else if (std::strncmp(argv[i], "--obs-out=", 10) == 0) {
            config.telemetry.out_path = argv[i] + 10;
            obs_out_seen = true;
        } else if (std::strcmp(argv[i], "--obs-metrics-out") == 0 &&
                   i + 1 < argc) {
            sinks.metrics_path = argv[++i];
        } else if (std::strncmp(argv[i], "--obs-metrics-out=", 18) ==
                   0) {
            sinks.metrics_path = argv[i] + 18;
        } else if (std::strcmp(argv[i], "--obs-phase") == 0) {
            config.detect_phases = true;
        } else if (std::strncmp(argv[i], "--obs-phase=", 12) == 0) {
            config.detect_phases = true;
            sinks.phase_path = argv[i] + 12;
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            sinks.trace_path = argv[++i];
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            sinks.trace_path = argv[i] + 12;
        } else if (std::strcmp(argv[i], "--manifest") == 0 &&
                   i + 1 < argc) {
            sinks.manifest_path = argv[++i];
        } else if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
            sinks.manifest_path = argv[i] + 11;
        } else if (!budget_seen) {
            config.run.op_budget = std::strtoull(argv[i], nullptr, 10);
            budget_seen = true;
        }
    }
    if (default_ratio && config.sampling.full_warming)
        config.sampling.ratio = kDefaultFullSampleRatio;
    config.run.warmup_ops = config.run.op_budget / 4;
    if (config.telemetry.enabled() && !obs_out_seen)
        config.telemetry.out_path = "obs/";
    if (config.detect_phases && !config.telemetry.enabled()) {
        std::fprintf(stderr, "warning: --obs-phase needs "
                             "--obs-interval; phase detection off\n");
        config.detect_phases = false;
    }
    if (!sinks.trace_path.empty() && sinks.trace == nullptr)
        sinks.trace = std::make_unique<obs::TraceWriter>();
    config.trace = sinks.trace.get();
    if (sinks.trace != nullptr)
        sinks.trace->name_process(obs::TraceWriter::kHostPid,
                                  "harness (host time)");
    if (!sinks.metrics_path.empty() && sinks.metrics == nullptr) {
        sinks.metrics = std::make_unique<obs::MetricsRegistry>();
        sinks.metrics->set_snapshot_spill(sinks.metrics_path + ".dcx");
    }
    if (!sinks.flush_registered &&
        (sinks.trace != nullptr || sinks.metrics != nullptr ||
         !sinks.manifest_path.empty())) {
        std::atexit(&flush_obs_sinks);
        sinks.flush_registered = true;
    }

    // Every bench run carries its provenance: the effective config goes
    // into the shared manifest whether or not --manifest was given, so
    // benches can embed it into their committed JSON artifacts.
    obs::RunManifest& m = sinks.manifest;
    std::string cmdline = argv[0];
    for (int i = 1; i < argc; ++i)
        cmdline += std::string(" ") + argv[i];
    m.set("command_line", cmdline);
    m.set("op_budget", config.run.op_budget);
    m.set("warmup_ops", config.run.warmup_ops);
    m.set("jobs", static_cast<std::uint64_t>(config.jobs));
    m.set("seed", config.run.seed);
    m.set("sampling_enabled", config.sampling.enabled());
    if (config.sampling.enabled()) {
        m.set("sampling_ratio", config.sampling.ratio);
        m.set("sampling_window_ops", config.sampling.window_ops);
        m.set("sampling_full_warming", config.sampling.full_warming);
    }
    m.set("obs_interval_ops", config.telemetry.interval_ops);
    if (config.telemetry.enabled()) {
        m.set("obs_out", config.telemetry.out_path);
        m.set("obs_extent_rows",
              static_cast<std::uint64_t>(config.telemetry.extent_rows));
    }
    if (!sinks.trace_path.empty())
        m.set("trace_out", sinks.trace_path);
    if (!sinks.metrics_path.empty())
        m.set("obs_metrics_out", sinks.metrics_path);
    m.set("phase_detection", config.detect_phases);
    if (!sinks.phase_path.empty())
        m.set("obs_phase_out", sinks.phase_path);
    m.add_host_info();

    std::printf("op budget: %llu ops per workload",
                static_cast<unsigned long long>(config.run.op_budget));
    if (config.sampling.enabled()) {
        const sample::IntervalLayout resolved = sample::resolve_layout(
            config.sampling, config.run.op_budget, config.run.warmup_ops);
        std::printf("; sampling ratio %.3f, window %llu ops, "
                    "warm %s\n",
                    config.sampling.ratio,
                    static_cast<unsigned long long>(resolved.window_ops),
                    config.sampling.full_warming
                        ? "full"
                        : std::to_string(config.sampling.warm_ops)
                              .c_str());
    }
    else
        std::printf("; exact (no sampling)\n");
    if (config.telemetry.enabled()) {
        if (config.sampling.enabled())
            std::printf("telemetry: ignored (sampled run decomposes "
                        "into windows already)\n");
        else
            std::printf(
                "telemetry: every %llu ops -> %s<workload>.telemetry."
                "{csv,json}\n",
                static_cast<unsigned long long>(
                    config.telemetry.interval_ops),
                config.telemetry.out_path.c_str());
    }
    return config;
}

/**
 * Export a suite's phase segmentation: stamps boundary totals into the
 * run manifest and, under --obs-phase=FILE, writes a
 * `{"signals": [...], "workloads": {name: segmentation}}` JSON
 * atomically. No-op for suites that ran without phase detection.
 */
inline void
stamp_phase_results(const core::SuiteResult& suite)
{
    const std::vector<std::string>& signals = core::phase_signal_names();
    std::uint64_t detected = 0;
    std::uint64_t boundaries = 0;
    std::string json = "{\n  \"signals\": [";
    for (std::size_t s = 0; s < signals.size(); ++s)
        json += (s > 0 ? ", \"" : "\"") + signals[s] + "\"";
    json += "],\n  \"workloads\": {\n";
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        const std::shared_ptr<obs::PhaseDetector>& phases =
            suite.runs[i].phases;
        if (phases == nullptr)
            continue;
        if (detected > 0)
            json += ",\n";
        ++detected;
        boundaries += phases->phase_boundaries().size();
        json +=
            "    \"" + suite.names[i] + "\": " + phases->to_json(signals);
    }
    json += "\n  }\n}\n";
    if (detected == 0)
        return;
    manifest().set("phase_workloads", detected);
    manifest().set("phase_boundaries", boundaries);
    ObsSinks& sinks = obs_sinks();
    if (sinks.phase_path.empty())
        return;
    if (util::write_file_atomic(sinks.phase_path, json))
        std::printf("wrote %s (%llu workloads, %llu phase "
                    "boundaries)\n",
                    sinks.phase_path.c_str(),
                    static_cast<unsigned long long>(detected),
                    static_cast<unsigned long long>(boundaries));
    else
        std::fprintf(stderr, "error: cannot write %s\n",
                     sinks.phase_path.c_str());
}

/** Surface per-workload failures without aborting the bench. */
inline std::vector<cpu::CounterReport>
reports_or_warn(const core::SuiteResult& suite)
{
    for (std::size_t i = 0; i < suite.runs.size(); ++i) {
        if (!suite.runs[i].status.ok)
            std::fprintf(stderr, "warning: %s skipped: %s\n",
                         suite.names[i].c_str(),
                         suite.runs[i].status.error.c_str());
    }
    stamp_phase_results(suite);
    return suite.reports();
}

/** Run the full 26-workload suite in figure order. */
inline std::vector<cpu::CounterReport>
run_full_suite(const core::HarnessConfig& config)
{
    std::printf("running %zu workloads at %llu ops each "
                "(warmup %llu discarded)...\n\n",
                workloads::figure_order().size(),
                static_cast<unsigned long long>(config.run.op_budget),
                static_cast<unsigned long long>(config.run.warmup_ops));
    return reports_or_warn(
        core::run_suite(workloads::figure_order(), config));
}

/** Run only the eleven data-analysis workloads (Table I order). */
inline std::vector<cpu::CounterReport>
run_data_analysis_suite(const core::HarnessConfig& config)
{
    return reports_or_warn(core::run_suite(
        workloads::names_in_category(workloads::Category::kDataAnalysis),
        config));
}

/** Paper lookup for a metric field (negative if unavailable). */
template <typename Getter>
core::PaperGetter
paper_field(Getter getter)
{
    return [getter](const std::string& name) {
        const auto m = core::paper_metrics(name);
        return m ? getter(*m) : -1.0;
    };
}

/** Average of a measured metric over a category. */
inline double
category_average(const std::vector<cpu::CounterReport>& reports,
                 workloads::Category category,
                 const core::MetricGetter& metric)
{
    return core::class_average(reports,
                               workloads::names_in_category(category),
                               metric);
}

}  // namespace dcb::bench

#endif  // DCBENCH_BENCH_BENCH_COMMON_H_
