/**
 * @file
 * Figure 6: normalized pipeline-stall breakdown (instruction fetch, RAT,
 * load buffer, store buffer, RS full, ROB full).
 *
 * Paper shape: data-analysis workloads stall mostly in the out-of-order
 * part (RS ~37% + ROB ~20% => ~57%); the request services stall before
 * it (RAT ~60% + fetch ~13% => ~73%).
 */

#include "bench_common.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    using util::format_double;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    util::Table table({"workload", "fetch%", "rat%", "load%", "store%",
                       "rs%", "rob%", "ooo% (paper rs+rob)"});
    table.set_title("Figure 6: pipeline stall breakdown (normalized)");
    util::CsvWriter csv({"workload", "fetch", "rat", "load", "store",
                         "rs", "rob"});
    for (const auto& r : reports) {
        const auto m = core::paper_metrics(r.workload);
        const double paper_ooo = m ? 100 * (m->stall_rs + m->stall_rob)
                                   : -1;
        table.add_row(
            {r.workload, format_double(100 * r.stalls.fetch, 0),
             format_double(100 * r.stalls.rat, 0),
             format_double(100 * r.stalls.load, 0),
             format_double(100 * r.stalls.store, 0),
             format_double(100 * r.stalls.rs, 0),
             format_double(100 * r.stalls.rob, 0),
             format_double(100 * r.stalls.out_of_order_part(), 0) + " (" +
                 format_double(paper_ooo, 0) + ")"});
        csv.add_row({r.workload, format_double(r.stalls.fetch, 4),
                     format_double(r.stalls.rat, 4),
                     format_double(r.stalls.load, 4),
                     format_double(r.stalls.store, 4),
                     format_double(r.stalls.rs, 4),
                     format_double(r.stalls.rob, 4)});
    }
    table.print();
    csv.write_file("fig06_stalls.csv");
    std::printf("\n");
    for (const auto& r : reports) {
        if (r.sampled) {
            std::printf("(sampled: stall shares carry per-window stderr; "
                        "e.g. fetch stderr up to %.4f across the suite)\n\n",
                        [&reports] {
                            double worst = 0.0;
                            for (const auto& rr : reports)
                                worst = std::max(
                                    worst, rr.stderr_of(
                                        cpu::ReportMetric::kStallFetch));
                            return worst;
                        }());
            break;
        }
    }

    const double da_ooo = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.stalls.out_of_order_part(); });
    double svc_inorder = 0.0;
    for (const auto& name : {"Media Streaming", "Data Serving",
                             "Web Search", "Web Serving", "SPECWeb"}) {
        for (const auto& r : reports)
            if (r.workload == name)
                svc_inorder += r.stalls.in_order_part();
    }
    svc_inorder /= 5.0;

    std::printf("DA out-of-order share %.0f%% (paper ~57%%); service "
                "in-order share %.0f%% (paper ~73%%)\n\n",
                100 * da_ooo, 100 * svc_inorder);
    core::shape_check("DA workloads stall mostly out-of-order",
                      da_ooo > 0.45);
    core::shape_check("services stall mostly in-order",
                      svc_inorder > 0.55);
    return 0;
}
