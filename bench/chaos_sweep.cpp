/**
 * @file
 * Chaos sweep: hundreds of seeded correlated-fault scenarios against
 * the self-healing scheduler, each held to hard invariants.
 *
 * Every scenario derives a workload, a cluster (slaves spread over
 * racks), and a FaultPlan deterministically from (base seed, scenario
 * id), runs the discrete-event scheduler, and asserts:
 *
 *  - the run terminates in finite simulated time (the scheduler's event
 *    budget makes a hang structurally impossible -- a livelock surfaces
 *    as a clean failure, which this harness would flag);
 *  - a completed job produced exactly the analytic-model task
 *    population (mapreduce::expected_task_counts) -- recovery may
 *    re-execute work, never lose or double-count it;
 *  - a failed job failed cleanly: non-empty error and a non-empty
 *    FaultLog that diagnoses what was injected;
 *  - no task ever exceeds max_attempts, and the 25% blacklist cap holds
 *    (net of partition-heal forgiveness);
 *  - a replay with a fresh injector from the same plan reproduces the
 *    JobRun bit for bit.
 *
 * The sweep spans all correlated fault kinds -- task crashes, hangs,
 * slow nodes, node crashes, rack power loss, network partitions (with
 * heals), master crash/failover, cascades -- and writes a committed
 * summary to BENCH_chaos.json (atomic write, deterministic content).
 *
 * Flags:
 *   --scenarios N        scenario count (default 240)
 *   --seed N             base seed (default fixed)
 *   --scenario K         run only scenario K (prints its outcome)
 *   --trace-out FILE     Chrome trace of the selected scenario's run
 *                        (simulated time only, so byte-identical across
 *                        replays -- CI diffs it)
 *   --check-invariants   exit nonzero on any invariant violation
 *   --json FILE          summary path (default BENCH_chaos.json;
 *                        "none" disables)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "fault/fault.h"
#include "fault/topology.h"
#include "mapreduce/fairshare.h"
#include "mapreduce/scheduler.h"
#include "obs/manifest.h"
#include "obs/trace_writer.h"
#include "util/atomic_file.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "workloads/data_analysis.h"
#include "workloads/registry.h"

namespace {

using namespace dcb;

constexpr std::uint64_t kDefaultBaseSeed = 0xC4A05EEDULL;
constexpr std::uint32_t kDefaultScenarios = 240;
constexpr std::uint32_t kKindCount = 8;

const char* const kKindNames[kKindCount] = {
    "task-crash", "task-hang",    "slow-node",    "node-crash",
    "rack-loss",  "partition",    "master-crash", "storm",
};

struct Scenario
{
    std::uint32_t id = 0;
    const char* kind = "";
    std::string workload;
    mapreduce::ClusterConfig cluster;
    fault::FaultPlan plan;
};

/** Scenario `id` as a pure function of (base_seed, id). */
Scenario
make_scenario(std::uint32_t id, std::uint64_t base_seed)
{
    util::Rng rng(util::mix64(base_seed ^ (0x5CE7A110ULL + id)));
    Scenario s;
    s.id = id;
    const auto& names = workloads::data_analysis_names();
    s.workload = names[id % names.size()];

    const std::uint32_t slave_choices[] = {4, 8, 16};
    s.cluster.slaves =
        slave_choices[static_cast<std::size_t>(rng.next_below(3))];
    s.cluster.racks = (id % 2 == 0) ? 2 : 4;

    fault::FaultPlan& p = s.plan;
    p.seed = util::mix64(base_seed ^ (0xFA17ULL + id));
    const auto racks = s.cluster.racks;
    s.kind = kKindNames[id % kKindCount];
    switch (id % kKindCount) {
      case 0:  // background task-attempt crashes
        p.task_crash_prob = 0.002 + 0.010 * rng.next_double();
        break;
      case 1:  // hung attempts, only the watchdog can reclaim them
        p.task_hang_prob = 0.002 + 0.015 * rng.next_double();
        break;
      case 2:  // degraded machines stragglering every task they host
        p.slow_node_fraction = 0.15 + 0.30 * rng.next_double();
        p.slow_multiplier = 1.5 + 2.0 * rng.next_double();
        break;
      case 3:  // one machine dies mid-job under light crash noise
        p.node_crash_time_s = 20.0 + 120.0 * rng.next_double();
        p.crash_node = static_cast<std::uint32_t>(
            rng.next_below(s.cluster.slaves));
        p.task_crash_prob = 0.004;
        break;
      case 4:  // a whole rack loses power
        p.rack_crash_time_s = 20.0 + 120.0 * rng.next_double();
        p.crash_rack = static_cast<std::uint32_t>(rng.next_below(racks));
        break;
      case 5:  // a rack is partitioned for an epoch, then heals
        p.partition_time_s = 10.0 + 80.0 * rng.next_double();
        p.partition_duration_s = 20.0 + 80.0 * rng.next_double();
        p.partition_rack =
            static_cast<std::uint32_t>(rng.next_below(racks));
        p.cascade_prob = 0.30;
        break;
      case 6:  // the JobTracker dies; standby resumes from checkpoint
        p.master_crash_time_s = 15.0 + 120.0 * rng.next_double();
        p.cascade_prob = 0.30;
        break;
      case 7:  // correlated storm: everything at once, may fail cleanly
        p.task_crash_prob = 0.02 + 0.28 * rng.next_double();
        p.task_hang_prob = 0.05;
        p.partition_time_s = 10.0 + 60.0 * rng.next_double();
        p.partition_duration_s = 30.0;
        p.partition_rack =
            static_cast<std::uint32_t>(rng.next_below(racks));
        p.master_crash_time_s = 30.0 + 90.0 * rng.next_double();
        p.cascade_prob = 0.50;
        break;
    }
    return s;
}

/** Bit-exact JobRun equality: the replay-determinism invariant. */
bool
runs_equal(const mapreduce::JobRun& a, const mapreduce::JobRun& b)
{
    return a.completed == b.completed && a.error == b.error &&
           a.timings.total_s == b.timings.total_s &&
           a.timings.map_s == b.timings.map_s &&
           a.timings.shuffle_s == b.timings.shuffle_s &&
           a.timings.reduce_s == b.timings.reduce_s &&
           a.timings.overhead_s == b.timings.overhead_s &&
           a.timings.disk_write_requests ==
               b.timings.disk_write_requests &&
           a.timings.disk_writes_per_second ==
               b.timings.disk_writes_per_second &&
           a.max_task_attempts == b.max_task_attempts &&
           a.task_failures == b.task_failures &&
           a.speculative_launched == b.speculative_launched &&
           a.speculative_wasted == b.speculative_wasted &&
           a.maps_reexecuted == b.maps_reexecuted &&
           a.nodes_lost == b.nodes_lost &&
           a.nodes_blacklisted == b.nodes_blacklisted &&
           a.wasted_task_s == b.wasted_task_s &&
           a.recovery_s == b.recovery_s &&
           a.watchdog_kills == b.watchdog_kills &&
           a.racks_lost == b.racks_lost && a.partitions == b.partitions &&
           a.partition_heals == b.partition_heals &&
           a.nodes_unblacklisted == b.nodes_unblacklisted &&
           a.master_failovers == b.master_failovers &&
           a.checkpoints_taken == b.checkpoints_taken &&
           a.tasks_restored == b.tasks_restored &&
           a.tasks_lost_to_failover == b.tasks_lost_to_failover &&
           a.cascades_triggered == b.cascades_triggered &&
           a.degraded_phases == b.degraded_phases &&
           a.maps_completed == b.maps_completed &&
           a.reduces_completed == b.reduces_completed;
}

struct KindTally
{
    std::uint32_t scenarios = 0;
    std::uint32_t completed = 0;
    std::uint32_t failed_clean = 0;
};

struct SweepState
{
    std::vector<std::string> violations;
    std::uint32_t replay_mismatches = 0;
    KindTally kinds[kKindCount];
    std::map<std::string, std::size_t> fault_events;
    mapreduce::JobRun totals;  ///< counter fields summed over scenarios
};

void
check(SweepState& state, const Scenario& s, bool held,
      const std::string& what)
{
    if (held)
        return;
    state.violations.push_back("scenario " + std::to_string(s.id) + " (" +
                               s.kind + ", " + s.workload + "): " + what);
}

/** Run one scenario and enforce every invariant; returns the JobRun. */
mapreduce::JobRun
run_scenario(const Scenario& s, const mapreduce::SchedulerConfig& policy,
             SweepState& state, obs::TraceWriter* trace)
{
    const mapreduce::ClusterScheduler scheduler(policy);
    const auto workload = workloads::make_workload(s.workload);
    const mapreduce::JobSpec& spec = workload->info().cluster_spec;
    const mapreduce::TaskCounts want =
        mapreduce::expected_task_counts(spec, s.cluster);

    fault::FaultInjector injector(s.plan);
    const mapreduce::JobRun run =
        scheduler.run(spec, s.cluster, &injector, trace, s.workload);

    KindTally& tally = state.kinds[s.id % kKindCount];
    ++tally.scenarios;

    // Invariant: finite simulated time, no hang.
    check(state, s,
          std::isfinite(run.timings.total_s) && run.timings.total_s >= 0.0,
          "non-finite simulated time");

    if (run.completed) {
        ++tally.completed;
        check(state, s, run.error.empty(),
              "completed but carries error text: " + run.error);
        // Invariant: exactly the analytic-model output counts.
        check(state, s, run.maps_completed == want.maps,
              "map completions " + std::to_string(run.maps_completed) +
                  " != expected " + std::to_string(want.maps));
        check(state, s, run.reduces_completed == want.reduces,
              "reduce completions " +
                  std::to_string(run.reduces_completed) + " != expected " +
                  std::to_string(want.reduces));
    } else {
        ++tally.failed_clean;
        // Invariant: failures are diagnosable -- an error message plus
        // a fault log explaining what was injected.
        check(state, s, !run.error.empty(),
              "failed without an error message");
        check(state, s, !injector.log().events().empty(),
              "failed with an empty fault log (undiagnosable)");
    }

    // Invariant: the retry budget really is a budget.
    check(state, s, run.max_task_attempts <= policy.max_attempts,
          "a task used " + std::to_string(run.max_task_attempts) +
              " attempts (max " + std::to_string(policy.max_attempts) +
              ")");
    // Invariant: the 25% blacklist cap, net of heal-time forgiveness.
    check(state, s,
          run.nodes_blacklisted <=
              s.cluster.slaves / 4 + run.nodes_unblacklisted,
          "blacklisted " + std::to_string(run.nodes_blacklisted) +
              " nodes on a " + std::to_string(s.cluster.slaves) +
              "-slave cluster (cap 25%)");

    // Invariant: bit-identical replay from a fresh injector.
    fault::FaultInjector replay_injector(s.plan);
    const mapreduce::JobRun replay =
        scheduler.run(spec, s.cluster, &replay_injector, nullptr,
                      s.workload);
    if (!runs_equal(run, replay)) {
        ++state.replay_mismatches;
        check(state, s, false, "replay diverged from the original run");
    }

    for (const auto& event : injector.log().events())
        ++state.fault_events[fault::fault_kind_name(event.kind)];

    mapreduce::JobRun& t = state.totals;
    t.task_failures += run.task_failures;
    t.watchdog_kills += run.watchdog_kills;
    t.nodes_lost += run.nodes_lost;
    t.racks_lost += run.racks_lost;
    t.partitions += run.partitions;
    t.partition_heals += run.partition_heals;
    t.nodes_blacklisted += run.nodes_blacklisted;
    t.nodes_unblacklisted += run.nodes_unblacklisted;
    t.master_failovers += run.master_failovers;
    t.tasks_restored += run.tasks_restored;
    t.tasks_lost_to_failover += run.tasks_lost_to_failover;
    t.cascades_triggered += run.cascades_triggered;
    t.degraded_phases += run.degraded_phases;
    t.maps_reexecuted += run.maps_reexecuted;
    t.speculative_launched += run.speculative_launched;
    return run;
}

/**
 * Parity mode (--engine sharded): drive the scenario's fault plan
 * through the multi-job fair-share scheduler on the sharded engine
 * instead of the serial ClusterScheduler. Two staggered submissions of
 * the scenario workload share the cluster, so the fair-share grant
 * path, the uplink link servers and the multi-job fault recovery all
 * run under the same chaos the serial sweep applies -- and the serial
 * (threads=1) run, the sharded (threads=4) run and a fresh-injector
 * replay must produce byte-identical MultiJobResult dumps.
 */
bool
run_scenario_sharded(const Scenario& s,
                     const mapreduce::FairShareConfig& fair,
                     SweepState& state)
{
    const mapreduce::MultiJobScheduler scheduler(fair);
    const auto workload = workloads::make_workload(s.workload);

    std::vector<mapreduce::JobSubmission> subs(2);
    subs[0].spec = workload->info().cluster_spec;
    subs[0].weight = 2.0;
    subs[1].spec = subs[0].spec;
    subs[1].submit_time_s = 15.0;

    const auto run_once = [&](unsigned threads) {
        fault::FaultInjector injector(s.plan);
        mapreduce::MultiJobOptions options;
        options.threads = threads;
        options.injector = &injector;
        return scheduler.run(subs, s.cluster, options);
    };
    const mapreduce::MultiJobResult serial = run_once(1);
    const mapreduce::MultiJobResult sharded = run_once(4);
    const mapreduce::MultiJobResult replay = run_once(4);

    KindTally& tally = state.kinds[s.id % kKindCount];
    ++tally.scenarios;
    check(state, s, serial.ok, "config rejected: " + serial.error);
    if (!serial.ok)
        return false;

    check(state, s,
          std::isfinite(serial.makespan_s) && serial.makespan_s >= 0.0,
          "non-finite simulated time");
    const std::string dump = serial.dump();
    if (dump != sharded.dump()) {
        ++state.replay_mismatches;
        check(state, s, false, "sharded run diverged from serial");
    }
    if (dump != replay.dump()) {
        ++state.replay_mismatches;
        check(state, s, false, "replay diverged from the original run");
    }

    bool all_completed = true;
    for (std::size_t j = 0; j < subs.size(); ++j) {
        const mapreduce::JobOutcome& job = serial.jobs[j];
        if (job.completed) {
            const mapreduce::TaskCounts want =
                mapreduce::expected_task_counts(subs[j].spec, s.cluster);
            check(state, s, job.error.empty(),
                  "completed but carries error text: " + job.error);
            check(state, s,
                  job.maps_completed == want.maps &&
                      job.reduces_completed == want.reduces,
                  "completed job " + std::to_string(j) +
                      " task counts off the analytic model");
        } else {
            all_completed = false;
            check(state, s, !job.error.empty(),
                  "failed without an error message");
        }
        check(state, s, job.max_task_attempts <= fair.max_attempts,
              "a task used " + std::to_string(job.max_task_attempts) +
                  " attempts (max " + std::to_string(fair.max_attempts) +
                  ")");
    }
    check(state, s,
          serial.cluster.nodes_blacklisted <=
              s.cluster.slaves / 4 + serial.cluster.nodes_unblacklisted,
          "blacklisted " +
              std::to_string(serial.cluster.nodes_blacklisted) +
              " nodes on a " + std::to_string(s.cluster.slaves) +
              "-slave cluster (cap 25%)");
    if (!all_completed)
        check(state, s, s.plan.any_faults(),
              "job failed under a fault-free plan");

    if (all_completed)
        ++tally.completed;
    else
        ++tally.failed_clean;
    mapreduce::JobRun& t = state.totals;
    t.watchdog_kills += serial.jobs[0].watchdog_kills +
                        serial.jobs[1].watchdog_kills;
    t.nodes_lost += serial.cluster.nodes_lost;
    t.racks_lost += serial.cluster.racks_lost;
    t.partitions += serial.cluster.partitions;
    t.partition_heals += serial.cluster.partition_heals;
    t.nodes_blacklisted += serial.cluster.nodes_blacklisted;
    t.nodes_unblacklisted += serial.cluster.nodes_unblacklisted;
    t.master_failovers += serial.cluster.master_failovers;
    t.tasks_lost_to_failover += serial.cluster.tasks_lost_to_failover;
    t.cascades_triggered += serial.cluster.cascades_triggered;
    return all_completed;
}

std::string
sweep_json(const SweepState& state, std::uint32_t scenarios,
           std::uint64_t base_seed, std::uint32_t completed,
           std::uint32_t failed_clean,
           const mapreduce::SchedulerConfig& policy)
{
    obs::RunManifest manifest;
    manifest.set("bench", "chaos_sweep");
    manifest.set("scenarios", std::uint64_t{scenarios});
    manifest.set("base_seed", std::uint64_t{base_seed});
    manifest.set("max_attempts", std::uint64_t{policy.max_attempts});
    manifest.set("task_timeout_factor", policy.task_timeout_factor);
    manifest.set("backoff_jitter", policy.backoff_jitter);
    manifest.set("checkpoint_interval_s", policy.checkpoint_interval_s);
    manifest.set("failover_delay_s", policy.failover_delay_s);

    std::string out = "{\n";
    out += "  \"scenarios\": " + std::to_string(scenarios) + ",\n";
    out += "  \"completed\": " + std::to_string(completed) + ",\n";
    out += "  \"failed_clean\": " + std::to_string(failed_clean) + ",\n";
    out += "  \"invariant_violations\": " +
           std::to_string(state.violations.size()) + ",\n";
    out += "  \"replay_mismatches\": " +
           std::to_string(state.replay_mismatches) + ",\n";
    out += "  \"kinds\": [\n";
    for (std::uint32_t k = 0; k < kKindCount; ++k) {
        const KindTally& tally = state.kinds[k];
        out += std::string("    {\"kind\": \"") + kKindNames[k] +
               "\", \"scenarios\": " + std::to_string(tally.scenarios) +
               ", \"completed\": " + std::to_string(tally.completed) +
               ", \"failed_clean\": " +
               std::to_string(tally.failed_clean) + "}" +
               (k + 1 < kKindCount ? "," : "") + "\n";
    }
    out += "  ],\n";
    out += "  \"fault_events\": {";
    bool first = true;
    for (const auto& [name, count] : state.fault_events) {
        out += std::string(first ? "" : ", ") + "\"" + name +
               "\": " + std::to_string(count);
        first = false;
    }
    out += "},\n";
    const mapreduce::JobRun& t = state.totals;
    out += "  \"totals\": {";
    out += "\"task_failures\": " + std::to_string(t.task_failures);
    out += ", \"watchdog_kills\": " + std::to_string(t.watchdog_kills);
    out += ", \"nodes_lost\": " + std::to_string(t.nodes_lost);
    out += ", \"racks_lost\": " + std::to_string(t.racks_lost);
    out += ", \"partitions\": " + std::to_string(t.partitions);
    out += ", \"partition_heals\": " + std::to_string(t.partition_heals);
    out += ", \"nodes_blacklisted\": " +
           std::to_string(t.nodes_blacklisted);
    out += ", \"nodes_unblacklisted\": " +
           std::to_string(t.nodes_unblacklisted);
    out += ", \"master_failovers\": " +
           std::to_string(t.master_failovers);
    out += ", \"tasks_restored\": " + std::to_string(t.tasks_restored);
    out += ", \"tasks_lost_to_failover\": " +
           std::to_string(t.tasks_lost_to_failover);
    out += ", \"cascades_triggered\": " +
           std::to_string(t.cascades_triggered);
    out += ", \"degraded_phases\": " + std::to_string(t.degraded_phases);
    out += ", \"maps_reexecuted\": " + std::to_string(t.maps_reexecuted);
    out += ", \"speculative_launched\": " +
           std::to_string(t.speculative_launched);
    out += "},\n";
    out += "  \"manifest\": " + manifest.json_fragment(2) + "\n";
    out += "}\n";
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    using util::format_double;

    std::uint32_t scenarios = kDefaultScenarios;
    std::uint64_t base_seed = kDefaultBaseSeed;
    std::int64_t only_scenario = -1;
    bool check_invariants = false;
    bool sharded_engine = false;
    std::string trace_path;
    std::string json_path;
    bool json_path_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            const std::size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
                arg[len] == '=')
                return arg.c_str() + len + 1;
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (arg == "--check-invariants")
            check_invariants = true;
        else if (const char* v = value("--scenarios"))
            scenarios = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (const char* v = value("--seed"))
            base_seed = std::strtoull(v, nullptr, 10);
        else if (const char* v = value("--scenario"))
            only_scenario = std::strtol(v, nullptr, 10);
        else if (const char* v = value("--trace-out"))
            trace_path = v;
        else if (const char* v = value("--engine")) {
            if (std::string(v) == "sharded") {
                sharded_engine = true;
            } else if (std::string(v) != "serial") {
                std::fprintf(stderr,
                             "error: --engine must be serial or "
                             "sharded, got \"%s\"\n",
                             v);
                return 2;
            }
        } else if (const char* v = value("--json")) {
            json_path = v;
            json_path_set = true;
        }
    }
    // The committed BENCH_chaos.json describes the serial sweep; the
    // sharded parity mode writes no JSON unless asked.
    if (!json_path_set)
        json_path = sharded_engine ? "none" : "BENCH_chaos.json";

    const mapreduce::SchedulerConfig policy;  // hardened defaults
    const mapreduce::FairShareConfig fair;    // multi-job analogue
    SweepState state;
    std::uint32_t completed = 0;
    std::uint32_t failed_clean = 0;

    if (sharded_engine) {
        // Parity sweep: every scenario through the multi-job fair-share
        // scheduler, serial vs sharded vs replay, same invariants.
        const std::uint32_t first =
            only_scenario >= 0 ? static_cast<std::uint32_t>(only_scenario)
                               : 0;
        const std::uint32_t last =
            only_scenario >= 0 ? first + 1 : scenarios;
        for (std::uint32_t id = first; id < last; ++id) {
            const Scenario s = make_scenario(id, base_seed);
            if (run_scenario_sharded(s, fair, state))
                ++completed;
            else
                ++failed_clean;
        }

        util::Table table({"fault kind", "scenarios", "completed",
                           "failed clean"});
        table.set_title("chaos parity sweep (sharded engine): " +
                        std::to_string(last - first) +
                        " scenarios x {serial, sharded, replay}");
        for (std::uint32_t k = 0; k < kKindCount; ++k)
            table.add_row({kKindNames[k],
                           std::to_string(state.kinds[k].scenarios),
                           std::to_string(state.kinds[k].completed),
                           std::to_string(state.kinds[k].failed_clean)});
        table.print();

        const mapreduce::JobRun& t = state.totals;
        std::printf("\n%u/%u scenarios completed every job, %u failed "
                    "clean; watchdog kills %u, racks lost %u, "
                    "partitions %u (heals %u), master failovers %u, "
                    "cascades %u\n",
                    completed, last - first, failed_clean,
                    t.watchdog_kills, t.racks_lost, t.partitions,
                    t.partition_heals, t.master_failovers,
                    t.cascades_triggered);
        for (const std::string& v : state.violations)
            std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());

        if (only_scenario < 0) {
            core::shape_check("zero invariant violations across the "
                              "parity sweep",
                              state.violations.empty());
            core::shape_check("serial, sharded and replay runs are "
                              "bit-identical",
                              state.replay_mismatches == 0);
            const bool all_kinds_survive = [&] {
                for (const KindTally& tally : state.kinds)
                    if (tally.completed == 0)
                        return false;
                return true;
            }();
            core::shape_check("every fault kind has scenarios where "
                              "both jobs complete",
                              all_kinds_survive);
            core::shape_check("multi-job recovery machinery fired "
                              "(heals + failovers)",
                              t.partition_heals > 0 &&
                                  t.master_failovers > 0);
        }
        return check_invariants && !state.violations.empty() ? 1 : 0;
    }

    if (only_scenario >= 0) {
        // Single-scenario mode: CI replays this twice and byte-diffs the
        // trace (simulated-time events only, so it must be identical).
        const Scenario s = make_scenario(
            static_cast<std::uint32_t>(only_scenario), base_seed);
        std::unique_ptr<obs::TraceWriter> trace;
        if (!trace_path.empty())
            trace = std::make_unique<obs::TraceWriter>();
        const mapreduce::JobRun run =
            run_scenario(s, policy, state, trace.get());
        std::printf("scenario %lld: kind=%s workload=\"%s\" slaves=%u "
                    "racks=%u -> %s in %.1fs (watchdog %u, heals %u, "
                    "failovers %u, cascades %u)\n",
                    static_cast<long long>(only_scenario), s.kind,
                    s.workload.c_str(), s.cluster.slaves, s.cluster.racks,
                    run.completed ? "completed"
                                  : ("FAILED: " + run.error).c_str(),
                    run.timings.total_s, run.watchdog_kills,
                    run.partition_heals, run.master_failovers,
                    run.cascades_triggered);
        if (trace != nullptr) {
            if (trace->write(trace_path))
                std::printf("wrote %s (%zu trace events)\n",
                            trace_path.c_str(), trace->size());
            else
                std::fprintf(stderr, "error: cannot write %s\n",
                             trace_path.c_str());
        }
        for (const std::string& v : state.violations)
            std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
        return check_invariants && !state.violations.empty() ? 1 : 0;
    }

    for (std::uint32_t id = 0; id < scenarios; ++id) {
        const Scenario s = make_scenario(id, base_seed);
        const mapreduce::JobRun run =
            run_scenario(s, policy, state, nullptr);
        if (run.completed)
            ++completed;
        else
            ++failed_clean;
    }

    util::Table table({"fault kind", "scenarios", "completed",
                       "failed clean"});
    table.set_title("chaos sweep: " + std::to_string(scenarios) +
                    " seeded correlated-fault scenarios");
    for (std::uint32_t k = 0; k < kKindCount; ++k)
        table.add_row({kKindNames[k],
                       std::to_string(state.kinds[k].scenarios),
                       std::to_string(state.kinds[k].completed),
                       std::to_string(state.kinds[k].failed_clean)});
    table.print();

    const mapreduce::JobRun& t = state.totals;
    std::printf("\n%u/%u completed exactly, %u failed clean; "
                "watchdog kills %u, racks lost %u, partitions %u "
                "(heals %u, un-blacklists %u), master failovers %u "
                "(restored %u, redone %u), cascades %u, degraded "
                "phases %u\n",
                completed, scenarios, failed_clean, t.watchdog_kills,
                t.racks_lost, t.partitions, t.partition_heals,
                t.nodes_unblacklisted, t.master_failovers,
                t.tasks_restored, t.tasks_lost_to_failover,
                t.cascades_triggered, t.degraded_phases);

    for (const std::string& v : state.violations)
        std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());

    const bool all_kinds_survive = [&] {
        for (const KindTally& tally : state.kinds)
            if (tally.completed == 0)
                return false;
        return true;
    }();
    core::shape_check("zero invariant violations across the sweep",
                      state.violations.empty());
    core::shape_check("every replay is bit-identical to its original",
                      state.replay_mismatches == 0);
    core::shape_check("every fault kind has scenarios that complete "
                      "exactly (incl. master crash)",
                      all_kinds_survive);
    core::shape_check("partitions heal and forgive blacklists",
                      t.partition_heals > 0);
    core::shape_check("master failovers restore checkpointed work",
                      t.master_failovers > 0 && t.tasks_restored > 0);
    core::shape_check("the hard kinds actually fired",
                      t.watchdog_kills > 0 && t.racks_lost > 0 &&
                          t.cascades_triggered > 0 &&
                          t.degraded_phases > 0);

    if (json_path != "none") {
        const std::string json = sweep_json(
            state, scenarios, base_seed, completed, failed_clean, policy);
        if (util::write_file_atomic(json_path, json))
            std::printf("\nwrote %s\n", json_path.c_str());
        else
            std::fprintf(stderr, "\nerror: cannot write %s\n",
                         json_path.c_str());
    }
    return check_invariants && !state.violations.empty() ? 1 : 0;
}
