/**
 * @file
 * Figure 9: L2 cache misses per thousand instructions.
 *
 * Paper shape: data-analysis ~11 MPKI on average -- above HPCC's
 * cache-resident kernels, well below the services' ~60; PageRank and
 * IBCF are the DA maxima; RandomAccess the global maximum.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 9: L2 cache misses per thousand instructions", reports, "L2 MPKI",
        [](const cpu::CounterReport& r) { return r.l2_mpki; },
        bench::paper_field([](const core::PaperMetrics& m) {
            return m.l2_mpki;
        }),
        1, "fig09_l2.csv", cpu::ReportMetric::kL2Mpki);

    const double da = bench::category_average(
        reports, workloads::Category::kDataAnalysis,
        [](const auto& r) { return r.l2_mpki; });
    const double svc = bench::category_average(
        reports, workloads::Category::kService,
        [](const auto& r) { return r.l2_mpki; });
    double dgemm = 0.0;
    for (const auto& r : reports)
        if (r.workload == "HPCC-DGEMM")
            dgemm = r.l2_mpki;
    std::printf("DA average %.1f MPKI (paper ~11), services %.1f "
                "(paper ~60)\n\n", da, svc);
    core::shape_check("DA below the services", da < svc);
    core::shape_check("cache-resident HPCC kernels near zero",
                      dgemm < 2.0);
    return 0;
}
