/**
 * @file
 * Figure 4: user/kernel retired-instruction breakdown.
 *
 * Paper shape: the service workloads execute > 40% of their instructions
 * in kernel mode; data-analysis workloads ~4% on average with Sort the
 * outlier (~24%, its I/O-heavy data plane); HPCC-RandomAccess ~31% from
 * copy_user_generic_string in its bucket exchanges.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace dcb;
    const auto config = bench::config_from_args(argc, argv);
    const auto reports = bench::run_full_suite(config);

    core::print_figure_table(
        "Figure 4: kernel-mode instruction fraction", reports, "kernel%",
        [](const cpu::CounterReport& r) {
            return 100.0 * r.kernel_instr_fraction;
        },
        bench::paper_field([](const core::PaperMetrics& m) {
            return 100.0 * m.kernel_frac;
        }),
        1, "fig04_kernel.csv", cpu::ReportMetric::kKernelFraction, 100.0);

    double sort = 0.0;
    double random_access = 0.0;
    double da_rest = 0.0;
    int da_n = 0;
    double svc_min = 1.0;
    for (const auto& r : reports) {
        if (r.workload == "Sort")
            sort = r.kernel_instr_fraction;
        if (r.workload == "HPCC-RandomAccess")
            random_access = r.kernel_instr_fraction;
    }
    for (const auto& name : workloads::names_in_category(
             workloads::Category::kDataAnalysis)) {
        if (name == "Sort")
            continue;
        for (const auto& r : reports) {
            if (r.workload == name) {
                da_rest += r.kernel_instr_fraction;
                ++da_n;
            }
        }
    }
    da_rest /= da_n;
    for (const auto& name : {"Media Streaming", "Data Serving",
                             "Web Search", "Web Serving", "SPECWeb"}) {
        for (const auto& r : reports) {
            if (r.workload == name)
                svc_min = std::min(svc_min, r.kernel_instr_fraction);
        }
    }

    std::printf("DA without Sort: %.1f%% kernel (paper ~4%%); Sort "
                "%.1f%% (paper ~24%%)\n\n",
                100 * da_rest, 100 * sort);
    core::shape_check("request services all above 40% kernel",
                      svc_min > 0.40);
    core::shape_check("Sort is the data-analysis outlier",
                      sort > 3 * da_rest);
    core::shape_check("RandomAccess is the HPCC outlier (~31%)",
                      random_access > 0.15);
    return 0;
}
